type 'm input =
  | Init
  | Recv of { src : Node_id.t; msg : 'm }
  | Timer of { id : int; tag : string }

type 'm effect_ =
  | E_send of { dst : Node_id.t; msg : 'm; size : int }
  | E_timer of { id : int; tag : string; delay : float }
  | E_cancel of int

type 'm node = {
  id : Node_id.t;
  name : string;
  factory : unit -> 'm handler;
  mutable handler : 'm handler;
  mutable alive : bool;
  mutable epoch : int;
  mutable processing : bool;
  mutable cpu_factor : float;
  queue : 'm input Queue.t;
}

and 'm handler = 'm ctx -> 'm input -> unit

and 'm ctx = {
  world : 'm t;
  node : 'm node;
  mutable charged : float;
  mutable effects : 'm effect_ list;
}

and 'm ev =
  | Ev_arrive of { dst : Node_id.t; epoch : int; input : 'm input }
  | Ev_done of { node : Node_id.t; epoch : int }
  | Ev_external of (unit -> unit)

and 'm t = {
  mutable now : float;
  mutable seq : int;
  heap : 'm ev Heap.t;
  rng : Prng.t;
  net : Net.t;
  mutable nodes : 'm node array;
  mutable node_count : int;
  mutable link_cap : int;  (* nodes covered by the flat link tables *)
  mutable link_last : float array;  (* [src * cap + dst] last arrival *)
  mutable partitions : bool array;  (* [min * cap + max] link is cut *)
  cancelled : (int, unit) Hashtbl.t;
  mutable timer_seq : int;
  mutable processed : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable scheduler : (sched_candidate array -> int) option;
  mutable sched_slack : float;
  mutable sched_width : int;
  mutable pending_digest : int;
      (* order-independent sum of per-event key hashes over every event
         currently scheduled and not yet dispatched; see
         [in_flight_fingerprint] *)
  mutable trace_on : bool;
  mutable trace_cap : int;
  mutable trace_len : int;
  mutable trace_buf : (float * Node_id.t * string) list;
}

and sched_candidate = {
  sc_time : float;
  sc_seq : int;
  sc_node : Node_id.t;  (* the node the event acts on; -1 for externals *)
  sc_src : Node_id.t;  (* message source for "recv" events; -1 otherwise *)
  sc_kind : string;  (* "init" | "recv" | "timer" | "done" | "ext" *)
}

let fifo_epsilon = 1.0e-9

let create ?(seed = 1) ?(net = Net.lan) () =
  {
    now = 0.0;
    seq = 0;
    heap = Heap.create ();
    rng = Prng.create seed;
    net;
    nodes = [||];
    node_count = 0;
    link_cap = 16;
    link_last = Array.make (16 * 16) neg_infinity;
    partitions = Array.make (16 * 16) false;
    cancelled = Hashtbl.create 64;
    timer_seq = 0;
    processed = 0;
    delivered = 0;
    dropped = 0;
    scheduler = None;
    sched_slack = 0.0;
    sched_width = 8;
    pending_digest = 0;
    trace_on = false;
    trace_cap = max_int;
    trace_len = 0;
    trace_buf = [];
  }

let now t = t.now
let rng t = t.rng
let events_processed t = t.processed
let deliveries t = t.delivered
let drops t = t.dropped

let set_scheduler t ?(slack = 0.0) ?(width = 8) f =
  t.scheduler <- Some f;
  t.sched_slack <- slack;
  t.sched_width <- max 2 width

let clear_scheduler t = t.scheduler <- None

(* Schedule-insensitive key of a pending event (by kind and endpoints, not
   by time — times differ across schedules that reach the same logical
   state). The digest of the pending multiset is the plain sum of these
   hashes: order-independent, so it can be maintained incrementally — add
   on [schedule], subtract on dispatch. Events popped and re-pushed by the
   scheduler hook (deferred or unchosen candidates) never touch it. *)
let mix_key kind a b =
  let h = (kind lsl 58) lxor (a lsl 29) lxor b in
  let h = h * 0x9e3779b1 in
  h lxor (h lsr 17)

let ev_key_hash = function
  | Ev_arrive { dst; input = Init; _ } -> mix_key 0 dst 0
  | Ev_arrive { dst; input = Recv { src; _ }; _ } -> mix_key 1 dst src
  | Ev_arrive { dst; input = Timer { tag; _ }; _ } ->
      mix_key 2 dst (Hashtbl.hash tag)
  | Ev_done { node; _ } -> mix_key 3 node 0
  | Ev_external _ -> mix_key 4 0 0

let schedule t time ev =
  t.seq <- t.seq + 1;
  t.pending_digest <- t.pending_digest + ev_key_hash ev;
  Heap.push t.heap ~time ~seq:t.seq ev

(* Ids are engine-issued, so a plain array access (bounds-checked by the
   runtime) is enough; this is on the dispatch path of every event. *)
let node t id = t.nodes.(id)

let spawn t ~name ?(cpu_factor = 1.0) factory =
  let id = t.node_count in
  let n =
    {
      id;
      name;
      factory;
      handler = factory ();
      alive = true;
      epoch = 0;
      processing = false;
      cpu_factor;
      queue = Queue.create ();
    }
  in
  if Array.length t.nodes = t.node_count then begin
    let ncap = max 8 (2 * Array.length t.nodes) in
    let narr = Array.make ncap n in
    Array.blit t.nodes 0 narr 0 t.node_count;
    t.nodes <- narr
  end;
  t.nodes.(t.node_count) <- n;
  t.node_count <- t.node_count + 1;
  if t.node_count > t.link_cap then begin
    let oc = t.link_cap in
    let nc = 2 * oc in
    let nll = Array.make (nc * nc) neg_infinity in
    let npt = Array.make (nc * nc) false in
    for a = 0 to oc - 1 do
      for b = 0 to oc - 1 do
        nll.((a * nc) + b) <- t.link_last.((a * oc) + b);
        npt.((a * nc) + b) <- t.partitions.((a * oc) + b)
      done
    done;
    t.link_cap <- nc;
    t.link_last <- nll;
    t.partitions <- npt
  end;
  schedule t t.now (Ev_arrive { dst = id; epoch = n.epoch; input = Init });
  id

let is_alive t id = (node t id).alive

(* Link state lives in flat arrays indexed by packed (src, dst) ints: no
   tuple keys, no hashing, and [link_last] stays an unboxed float array —
   both tables are on the path of every routed message. *)
let pack a b = (a lsl 20) lor b

let link_idx t a b = (a * t.link_cap) + b
let link_key t a b = if a < b then link_idx t a b else link_idx t b a

let partition t a b = t.partitions.(link_key t a b) <- true
let heal t a b = t.partitions.(link_key t a b) <- false
let partitioned t a b = t.partitions.(link_key t a b)

(* Deliver a message leaving [src] at [depart] towards [dst], obeying the
   latency model, per-link FIFO order, loss and partitions. *)
let route t ~depart ~src ~dst ~size input =
  if partitioned t src dst then t.dropped <- t.dropped + 1
  else if t.net.Net.loss > 0.0 && Prng.float t.rng < t.net.Net.loss then
    t.dropped <- t.dropped + 1
  else begin
    let d = Net.delay t.net t.rng ~size in
    let arrive = depart +. d in
    let idx = link_idx t src dst in
    let last = t.link_last.(idx) in
    let arrive = if arrive <= last then last +. fifo_epsilon else arrive in
    t.link_last.(idx) <- arrive;
    let n = node t dst in
    schedule t arrive (Ev_arrive { dst; epoch = n.epoch; input })
  end

let apply_effect t n ~done_at = function
  | E_send { dst; msg; size } ->
      route t ~depart:done_at ~src:n.id ~dst ~size (Recv { src = n.id; msg })
  | E_timer { id; tag; delay } ->
      schedule t (done_at +. delay)
        (Ev_arrive { dst = n.id; epoch = n.epoch; input = Timer { id; tag } })
  | E_cancel id -> Hashtbl.replace t.cancelled id ()

let exec t n input =
  n.processing <- true;
  let ctx = { world = t; node = n; charged = 0.0; effects = [] } in
  n.handler ctx input;
  let cost = ctx.charged *. n.cpu_factor in
  let done_at = t.now +. cost in
  List.iter (apply_effect t n ~done_at) (List.rev ctx.effects);
  schedule t done_at (Ev_done { node = n.id; epoch = n.epoch })

let handle_arrival t n input =
  match input with
  | Timer { id; _ } when Hashtbl.mem t.cancelled id ->
      Hashtbl.remove t.cancelled id
  | Init | Recv _ | Timer _ ->
      if n.processing then Queue.push input n.queue else exec t n input

let dispatch t = function
  | Ev_external f -> f ()
  | Ev_arrive { dst; epoch; input } ->
      let n = node t dst in
      if n.alive && n.epoch = epoch then begin
        (match input with
        | Recv _ -> t.delivered <- t.delivered + 1
        | Init | Timer _ -> ());
        handle_arrival t n input
      end
      else begin
        match input with
        | Recv _ -> t.dropped <- t.dropped + 1
        | Init | Timer _ -> ()
      end
  | Ev_done { node = id; epoch } ->
      let n = node t id in
      if n.alive && n.epoch = epoch then begin
        n.processing <- false;
        match Queue.take_opt n.queue with
        | Some input -> exec t n input
        | None -> ()
      end

let dispatch_at t time ev =
  t.now <- max t.now time;
  t.processed <- t.processed + 1;
  t.pending_digest <- t.pending_digest - ev_key_hash ev;
  dispatch t ev

let candidate_of time seq = function
  | Ev_arrive { dst; input = Init; _ } ->
      { sc_time = time; sc_seq = seq; sc_node = dst; sc_src = -1; sc_kind = "init" }
  | Ev_arrive { dst; input = Recv { src; _ }; _ } ->
      { sc_time = time; sc_seq = seq; sc_node = dst; sc_src = src; sc_kind = "recv" }
  | Ev_arrive { dst; input = Timer _; _ } ->
      { sc_time = time; sc_seq = seq; sc_node = dst; sc_src = -1; sc_kind = "timer" }
  | Ev_done { node; _ } ->
      { sc_time = time; sc_seq = seq; sc_node = node; sc_src = -1; sc_kind = "done" }
  | Ev_external _ ->
      { sc_time = time; sc_seq = seq; sc_node = -1; sc_src = -1; sc_kind = "ext" }

(* Pop further events enabled within [slack] of the earliest one. Externals
   act as barriers: they script faults and load changes, so nothing may be
   reordered across them. *)
let gather t ~tmin first =
  let lim = tmin +. t.sched_slack in
  let rec go acc n =
    if
      n >= t.sched_width
      || Heap.is_empty t.heap
      || Heap.top_time t.heap > lim
    then List.rev acc
    else
      match Heap.top_value t.heap with
      | Ev_external _ -> List.rev acc
      | Ev_arrive _ | Ev_done _ -> (
          match Heap.pop t.heap with
          | Some e -> go (e :: acc) (n + 1)
          | None -> List.rev acc)
  in
  go [ first ] 1

(* Per-link FIFO (the TCP channels the protocols assume) must survive
   reordering: of several pending arrivals on one (src, dst) link, only the
   earliest is offered as a candidate. The candidate set is tiny (at most
   [sched_width], default 8), so a linear scan over the packed link keys
   already seen beats allocating a hash table per choice point. *)
let fifo_filter entries =
  let seen = ref [] in
  List.partition
    (fun (_, _, ev) ->
      match ev with
      | Ev_arrive { dst; input = Recv { src; _ }; _ } ->
          let key = pack src dst in
          if List.memq key !seen then false
          else begin
            seen := key :: !seen;
            true
          end
      | Ev_arrive _ | Ev_done _ | Ev_external _ -> true)
    entries

let step t =
  match Heap.pop t.heap with
  | None -> false
  | Some (time, seq, ev) ->
      (match (t.scheduler, ev) with
      | Some choose, (Ev_arrive _ | Ev_done _) -> (
          let gathered = gather t ~tmin:time (time, seq, ev) in
          let cands, deferred = fifo_filter gathered in
          List.iter
            (fun (tm, sq, e) -> Heap.push t.heap ~time:tm ~seq:sq e)
            deferred;
          match cands with
          | [ (tm, _, e) ] -> dispatch_at t tm e
          | _ ->
              let arr = Array.of_list cands in
              let descr =
                Array.map (fun (tm, sq, e) -> candidate_of tm sq e) arr
              in
              let i = choose descr in
              let i = if i < 0 || i >= Array.length arr then 0 else i in
              Array.iteri
                (fun j (tm, sq, e) ->
                  if j <> i then Heap.push t.heap ~time:tm ~seq:sq e)
                arr;
              let tm, _, e = arr.(i) in
              dispatch_at t tm e)
      | _ -> dispatch_at t time ev);
      true

let run ?(until = infinity) ?(max_events = max_int) t =
  let budget = ref max_events in
  let continue = ref true in
  while !continue && !budget > 0 do
    if Heap.is_empty t.heap || Heap.top_time t.heap > until then
      continue := false
    else begin
      ignore (step t);
      decr budget
    end
  done

let crash t id =
  let n = node t id in
  if n.alive then begin
    n.alive <- false;
    n.epoch <- n.epoch + 1;
    n.processing <- false;
    Queue.clear n.queue
  end

let restart t id =
  let n = node t id in
  if not n.alive then begin
    n.alive <- true;
    n.epoch <- n.epoch + 1;
    n.handler <- n.factory ();
    schedule t t.now (Ev_arrive { dst = id; epoch = n.epoch; input = Init })
  end

let send_external t ?(size = 64) ~src dst msg =
  route t ~depart:t.now ~src ~dst ~size (Recv { src; msg })

let at t time f = schedule t time (Ev_external f)

(* Handler-side operations. *)

let self ctx = ctx.node.id
let time ctx = ctx.world.now

let send ctx ?(size = 64) dst msg =
  ctx.effects <- E_send { dst; msg; size } :: ctx.effects

let set_timer ctx delay tag =
  let t = ctx.world in
  t.timer_seq <- t.timer_seq + 1;
  let id = t.timer_seq in
  ctx.effects <- E_timer { id; tag; delay } :: ctx.effects;
  id

let cancel_timer ctx id = ctx.effects <- E_cancel id :: ctx.effects

let charge ctx seconds = ctx.charged <- ctx.charged +. seconds

let random ctx = ctx.world.rng

(* Tracing is off by default: an unread trace buffer on a long bench run
   is pure allocation. When enabled, the buffer keeps the first [cap]
   lines and then stops recording. *)
let enable_trace ?(cap = max_int) t =
  t.trace_on <- true;
  t.trace_cap <- cap

let disable_trace t = t.trace_on <- false

let trace ctx line =
  let t = ctx.world in
  if t.trace_on && t.trace_len < t.trace_cap then begin
    t.trace_len <- t.trace_len + 1;
    t.trace_buf <- (t.now, ctx.node.id, line) :: t.trace_buf
  end

let get_trace t = List.rev t.trace_buf

let in_flight t = Heap.length t.heap

(* A schedule-insensitive digest of the transport state: the multiset of
   pending events (maintained incrementally in [pending_digest]) plus each
   node's liveness and queue backlog. Model-checker state hashing composes
   this with protocol-level state digests. The pending part is O(1) here;
   only the per-node fold is paid per call. *)
let fingerprint_of_digest t digest =
  let h = ref digest in
  for i = 0 to t.node_count - 1 do
    let n = t.nodes.(i) in
    let v =
      mix_key 5 i
        ((Queue.length n.queue lsl 2)
        lor (if n.alive then 2 else 0)
        lor (if n.processing then 1 else 0))
    in
    h := !h lxor (v + 0x9e3779b9 + (!h lsl 6) + (!h lsr 2))
  done;
  !h land max_int

let in_flight_fingerprint t = fingerprint_of_digest t t.pending_digest

(* From-scratch heap walk, kept as the specification of the incremental
   digest (tests check the two always agree). *)
let in_flight_fingerprint_ref t =
  let acc = ref 0 in
  Heap.iter t.heap (fun _time _seq ev -> acc := !acc + ev_key_hash ev);
  fingerprint_of_digest t !acc
