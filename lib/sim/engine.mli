(** Deterministic discrete-event simulator.

    The engine hosts a set of {e nodes}, each owning a single virtual CPU.
    A node processes one input at a time: while its handler runs, charged
    CPU time ({!charge}) extends the node's busy period, and further inputs
    queue behind it. Outputs (sends, timers) take effect when the handler's
    busy period ends. This produces the CPU-bound saturation behaviour that
    the paper's evaluation measures on real hardware.

    Links are FIFO per (source, destination) pair, modelling the TCP
    channels the paper assumes; nodes may crash (losing all volatile state
    and pending timers) and restart with a fresh handler from their factory.

    All scheduling is totally ordered by [(virtual time, sequence number)]
    and all randomness flows from one seeded {!Prng.t}: two runs with the
    same seed produce identical traces. *)

type 'm t
(** A simulation world exchanging messages of type ['m]. *)

type 'm ctx
(** Handler-side capability: what a node may do while processing an input. *)

type 'm input =
  | Init  (** Delivered once when the node starts (and again on restart). *)
  | Recv of { src : Node_id.t; msg : 'm }  (** A message arrival. *)
  | Timer of { id : int; tag : string }  (** An armed timer fired. *)

type 'm handler = 'm ctx -> 'm input -> unit
(** Node behaviour. Handlers are closures over their own mutable state. *)

val create : ?seed:int -> ?net:Net.t -> unit -> 'm t
(** Fresh world. [seed] defaults to 1, [net] to {!Net.lan}. *)

val now : 'm t -> float
(** Current virtual time in seconds. *)

val rng : 'm t -> Prng.t
(** The world's random stream (use for workload generation so runs stay
    reproducible). *)

val spawn :
  'm t -> name:string -> ?cpu_factor:float -> (unit -> 'm handler) -> Node_id.t
(** [spawn t ~name factory] creates a node whose behaviour is
    [factory ()]; the factory is re-invoked on restart, modelling loss of
    volatile state. [cpu_factor] scales all charged CPU costs (default
    1.0) — slower interpreters have a factor above 1. The node receives
    {!Init} at the current time. *)

val crash : 'm t -> Node_id.t -> unit
(** Crash a node now: it stops processing, its queue and timers are
    discarded, in-flight messages to it are lost. *)

val restart : 'm t -> Node_id.t -> unit
(** Restart a crashed node with a fresh handler from its factory; it
    receives {!Init}. *)

val is_alive : 'm t -> Node_id.t -> bool

val partition : 'm t -> Node_id.t -> Node_id.t -> unit
(** Drop all future messages in both directions between the two nodes
    until {!heal} is called. *)

val heal : 'm t -> Node_id.t -> Node_id.t -> unit
(** Remove a partition installed by {!partition}. *)

val send_external : 'm t -> ?size:int -> src:Node_id.t -> Node_id.t -> 'm -> unit
(** Inject a message from outside any handler (e.g. test drivers); it
    leaves [src] at the current time and obeys the normal network model. *)

val at : 'm t -> float -> (unit -> unit) -> unit
(** [at t time f] runs [f] at absolute virtual [time] (used to script
    crashes, restarts, load changes). *)

val run : ?until:float -> ?max_events:int -> 'm t -> unit
(** Process events in order until the queue is empty, or virtual time
    exceeds [until], or [max_events] have been processed. *)

val step : 'm t -> bool
(** Process a single event; [false] if the queue was empty. *)

val events_processed : 'm t -> int
(** Total number of events executed so far (for budget checks in tests). *)

val deliveries : 'm t -> int
(** Messages delivered to a live node so far. *)

val drops : 'm t -> int
(** Messages lost so far: partitioned or lossy links, and arrivals at
    crashed (or since-restarted) nodes. *)

val in_flight : 'm t -> int
(** Number of pending events (arrivals, busy-period completions, scripted
    externals). *)

val in_flight_fingerprint : 'm t -> int
(** Order-insensitive digest of the pending-event multiset (by kind and
    endpoints) and per-node liveness/backlog. Used by the model checker to
    recognize revisited states across different schedules. The pending-event
    part is maintained incrementally (added on schedule, subtracted on
    dispatch), so a call costs O(nodes), not O(in-flight events). *)

val in_flight_fingerprint_ref : 'm t -> int
(** Reference implementation of {!in_flight_fingerprint} that recomputes
    the pending-event digest with a full heap walk. Always equal to
    {!in_flight_fingerprint}; exists so tests can check the incremental
    bookkeeping against the specification. *)

(** {1 Schedule exploration}

    By default events execute in [(time, seq)] order — one fixed schedule
    per seed. A scheduler hook exposes the nondeterminism a real
    distributed system has: whenever several events are enabled within
    [slack] seconds of the earliest pending one, the hook picks which
    fires next. Per-link FIFO is preserved (only the earliest pending
    arrival of each (src, dst) link is offered), and scripted
    {!at}-externals are barriers that nothing is reordered across, so
    every choice the hook can make is a schedule a real execution could
    exhibit. *)

type sched_candidate = {
  sc_time : float;
  sc_seq : int;
  sc_node : Node_id.t;  (** Node the event acts on; [-1] for externals. *)
  sc_src : Node_id.t;  (** Message source for ["recv"]; [-1] otherwise. *)
  sc_kind : string;  (** ["init" | "recv" | "timer" | "done" | "ext"]. *)
}

val set_scheduler :
  'm t -> ?slack:float -> ?width:int -> (sched_candidate array -> int) -> unit
(** Install a scheduling strategy. The callback receives ≥ 2 candidates in
    [(time, seq)] order and returns the index to fire (out-of-range falls
    back to 0, the default order). [slack] (default 0: exact ties only)
    widens the enabled window; [width] (default 8) caps the candidate set. *)

val clear_scheduler : 'm t -> unit
(** Revert to the default deterministic [(time, seq)] order. *)

(** {1 Handler-side operations} *)

val self : 'm ctx -> Node_id.t
val time : 'm ctx -> float

val send : 'm ctx -> ?size:int -> Node_id.t -> 'm -> unit
(** Send a message; it departs when the current busy period ends. [size]
    (bytes, default 64) feeds the bandwidth term of the network model. *)

val set_timer : 'm ctx -> float -> string -> int
(** [set_timer ctx delay tag] arms a timer [delay] seconds after the busy
    period ends and returns its id. Crash disarms all timers. *)

val cancel_timer : 'm ctx -> int -> unit
(** Disarm a timer by id; firing a cancelled timer is a no-op. *)

val charge : 'm ctx -> float -> unit
(** Account [seconds] of CPU work to this node for the current input. *)

val random : 'm ctx -> Prng.t
(** The world's random stream, for randomized handlers. *)

val trace : 'm ctx -> string -> unit
(** Append a line to the world's trace buffer. A no-op (zero allocation)
    unless tracing was switched on with {!enable_trace}. *)

val enable_trace : ?cap:int -> 'm t -> unit
(** Turn trace recording on. At most [cap] lines are kept (the first
    [cap]; default unbounded), so long benchmark runs cannot accumulate
    an unbounded buffer. *)

val disable_trace : 'm t -> unit
(** Turn trace recording back off; already-recorded lines are kept. *)

val get_trace : 'm t -> (float * Node_id.t * string) list
(** Trace lines in chronological order. *)
