type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = { mutable arr : 'a entry array; mutable size : int }

let create () = { arr = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.arr in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let narr = Array.make ncap entry in
    Array.blit t.arr 0 narr 0 t.size;
    t.arr <- narr
  end

let push t ~time ~seq value =
  let entry = { time; seq; value } in
  grow t entry;
  t.arr.(t.size) <- entry;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    lt t.arr.(!i) t.arr.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.arr.(!i) in
    t.arr.(!i) <- t.arr.(parent);
    t.arr.(parent) <- tmp;
    i := parent
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let left = (2 * !i) + 1 and right = (2 * !i) + 2 in
    let smallest = ref !i in
    if left < t.size && lt t.arr.(left) t.arr.(!smallest) then smallest := left;
    if right < t.size && lt t.arr.(right) t.arr.(!smallest) then smallest := right;
    if !smallest = !i then continue := false
    else begin
      let tmp = t.arr.(!i) in
      t.arr.(!i) <- t.arr.(!smallest);
      t.arr.(!smallest) <- tmp;
      i := !smallest
    end
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.arr.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.arr.(0) <- t.arr.(t.size);
      sift_down t
    end;
    Some (top.time, top.seq, top.value)
  end

let peek t =
  if t.size = 0 then None
  else
    let top = t.arr.(0) in
    Some (top.time, top.seq, top.value)

let iter t f =
  for i = 0 to t.size - 1 do
    let e = t.arr.(i) in
    f e.time e.seq e.value
  done

let clear t =
  t.arr <- [||];
  t.size <- 0
