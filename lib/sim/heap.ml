(* Parallel-array layout: [times] is an unboxed float array, so key
   comparisons never chase a boxed float, and pushing allocates nothing
   (amortized). This heap sits under every simulator event, so its
   constant factors bound engine throughput. *)
type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable size : int;
}

let create () = { times = [||]; seqs = [||]; values = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let lt t i j =
  let ti = t.times.(i) and tj = t.times.(j) in
  ti < tj || (ti = tj && t.seqs.(i) < t.seqs.(j))

let grow t value =
  let cap = Array.length t.times in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ntimes = Array.make ncap 0.0 in
    Array.blit t.times 0 ntimes 0 t.size;
    t.times <- ntimes;
    let nseqs = Array.make ncap 0 in
    Array.blit t.seqs 0 nseqs 0 t.size;
    t.seqs <- nseqs;
    let nvalues = Array.make ncap value in
    Array.blit t.values 0 nvalues 0 t.size;
    t.values <- nvalues
  end

(* Sifts move a hole and write the pending element once at the end (three
   stores per level instead of a nine-store swap). *)
let push t ~time ~seq value =
  grow t value;
  let i = ref t.size in
  t.size <- t.size + 1;
  (* Sift the hole up while the pending key beats the parent. *)
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    let pt = t.times.(parent) in
    time < pt || (time = pt && seq < t.seqs.(parent))
  do
    let parent = (!i - 1) / 2 in
    t.times.(!i) <- t.times.(parent);
    t.seqs.(!i) <- t.seqs.(parent);
    t.values.(!i) <- t.values.(parent);
    i := parent
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.values.(!i) <- value

(* Sift the element at the root's hole down: the pending (time, seq, value)
   triple is the element logically at index 0. *)
let sift_down t ~time ~seq value =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let left = (2 * !i) + 1 in
    if left >= t.size then continue := false
    else begin
      let right = left + 1 in
      let smallest =
        if right < t.size && lt t right left then right else left
      in
      let st = t.times.(smallest) in
      if st < time || (st = time && t.seqs.(smallest) < seq) then begin
        t.times.(!i) <- st;
        t.seqs.(!i) <- t.seqs.(smallest);
        t.values.(!i) <- t.values.(smallest);
        i := smallest
      end
      else continue := false
    end
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.values.(!i) <- value

(* Non-allocating top accessors for hot loops; undefined when empty
   (callers check [is_empty] first). *)
let top_time t = t.times.(0)
let top_value t = t.values.(0)

let drop_top t =
  t.size <- t.size - 1;
  if t.size > 0 then begin
    let last = t.size in
    let time = t.times.(last) in
    let seq = t.seqs.(last) in
    let value = t.values.(last) in
    sift_down t ~time ~seq value
  end

let pop t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) and seq = t.seqs.(0) and value = t.values.(0) in
    drop_top t;
    Some (time, seq, value)
  end

let peek t =
  if t.size = 0 then None else Some (t.times.(0), t.seqs.(0), t.values.(0))

let iter t f =
  for i = 0 to t.size - 1 do
    f t.times.(i) t.seqs.(i) t.values.(i)
  done

let clear t =
  t.times <- [||];
  t.seqs <- [||];
  t.values <- [||];
  t.size <- 0
