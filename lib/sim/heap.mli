(** Binary min-heap keyed by [(time, seq)] pairs.

    The integer sequence number breaks ties between events scheduled for the
    same instant, giving the simulator a deterministic total order of
    execution. *)

type 'a t
(** Heap holding payloads of type ['a]. *)

val create : unit -> 'a t
(** Fresh empty heap. *)

val length : 'a t -> int
(** Number of stored elements. *)

val is_empty : 'a t -> bool

val push : 'a t -> time:float -> seq:int -> 'a -> unit
(** Insert an element with the given priority key. *)

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum element, or [None] if empty. *)

val peek : 'a t -> (float * int * 'a) option
(** Return the minimum element without removing it. *)

val top_time : 'a t -> float
(** Key time of the minimum element, without allocating. Undefined when
    the heap is empty — check {!is_empty} first. *)

val top_value : 'a t -> 'a
(** Payload of the minimum element, without allocating. Undefined when
    the heap is empty — check {!is_empty} first. *)

val iter : 'a t -> (float -> int -> 'a -> unit) -> unit
(** Visit every stored element in unspecified (heap-internal) order. *)

val clear : 'a t -> unit
(** Drop all elements. *)
