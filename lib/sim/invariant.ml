(* Structured invariant-violation errors (extends PR 2's
   [Acceptor.Invariant_violation] to the whole stack).

   An "impossible" state reached at runtime must name the layer and the
   state that broke instead of dying anonymously in [assert false] /
   [List.hd]: a model-checking schedule or a live-cluster log has to be
   able to say which role violated which internal contract. The lint
   CLI's forbidden-pattern sweep (`shadowdb_lint --sweep`) keeps new
   anonymous-failure sites from creeping back in. *)

exception Violation of { layer : string; detail : string }

let () =
  Printexc.register_printer (function
    | Violation { layer; detail } ->
        Some (Printf.sprintf "Invariant violation [%s]: %s" layer detail)
    | _ -> None)

(* [fail layer fmt ...] raises a structured violation. *)
let fail layer fmt =
  Format.kasprintf (fun detail -> raise (Violation { layer; detail })) fmt

(* Checked replacements for the partial list operations the sweep bans in
   protocol code: same behaviour on the happy path, a structured
   violation (instead of an anonymous [Failure]/[Not_found]) otherwise. *)

let head ~layer ~what = function
  | x :: _ -> x
  | [] -> fail layer "%s: expected a non-empty list" what

let assoc ~layer ~what key l =
  match List.assoc_opt key l with
  | Some v -> v
  | None -> fail layer "%s: key absent from association list" what
