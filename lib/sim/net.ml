type t = { latency : float; jitter : float; bandwidth : float; loss : float }

let lan = { latency = 1.0e-4; jitter = 2.0e-5; bandwidth = 125.0e6; loss = 0.0 }

let local = { latency = 5.0e-6; jitter = 1.0e-6; bandwidth = infinity; loss = 0.0 }

let lossy p = { lan with loss = p }

let wan ?(loss = 0.0) () =
  { latency = 0.04; jitter = 0.01; bandwidth = 12.5e6; loss }

let delay t rng ~size =
  let serialization =
    if t.bandwidth = infinity then 0.0 else float_of_int size /. t.bandwidth
  in
  t.latency +. Prng.uniform rng t.jitter +. serialization
