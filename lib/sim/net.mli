(** Network latency and loss model.

    Message delay is [latency + U(0, jitter) + size / bandwidth]; per-link
    FIFO order is preserved by the engine (TCP-like channels, as assumed by
    the paper). *)

type t = {
  latency : float;  (** One-way propagation delay in seconds. *)
  jitter : float;  (** Uniform additional delay in [\[0, jitter)] seconds. *)
  bandwidth : float;
      (** Bytes per second for the serialization term; [infinity] disables
          the size-dependent term. *)
  loss : float;  (** Probability that a message is silently dropped. *)
}

val lan : t
(** Gigabit-switch LAN profile matching the paper's testbed: 0.1 ms
    propagation, small jitter, 125 MB/s, no loss. *)

val local : t
(** Same-machine channel (co-located processes): near-zero delay. *)

val lossy : float -> t
(** [lossy p] is {!lan} with drop probability [p] (for failure-injection
    tests). *)

val wan : ?loss:float -> unit -> t
(** Wide-area profile: 40 ms propagation, up to 10 ms jitter, 12.5 MB/s
    (a 100 Mbit/s long-haul link), drop probability [loss] (default 0) —
    for geo-replication experiments, where consensus round trips dominate
    everything else. *)

val delay : t -> Prng.t -> size:int -> float
(** Sample the one-way delay for a message of [size] bytes. *)
