type t = {
  bin : float;
  counts : (int, int) Hashtbl.t;
  mutable last_bin : int;
  mutable total : int;
}

let create ~bin = { bin; counts = Hashtbl.create 64; last_bin = -1; total = 0 }

let record t time =
  let b = int_of_float (time /. t.bin) in
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.counts b) in
  Hashtbl.replace t.counts b (cur + 1);
  if b > t.last_bin then t.last_bin <- b;
  t.total <- t.total + 1

let bins t =
  let rec build i acc =
    if i < 0 then acc
    else
      let c = Option.value ~default:0 (Hashtbl.find_opt t.counts i) in
      let rate = float_of_int c /. t.bin in
      build (i - 1) ((float_of_int i *. t.bin, rate) :: acc)
  in
  build t.last_bin []

let total t = t.total

let between t t0 t1 =
  let b0 = int_of_float (t0 /. t.bin) and b1 = int_of_float (t1 /. t.bin) in
  let n = ref 0 in
  for b = max 0 b0 to min t.last_bin b1 do
    n := !n + Option.value ~default:0 (Hashtbl.find_opt t.counts b)
  done;
  !n
