(** Time-binned event counting, for instantaneous-throughput plots
    (Fig. 10(a) of the paper). *)

type t

val create : bin:float -> t
(** [create ~bin] counts events into consecutive bins of [bin] seconds. *)

val record : t -> float -> unit
(** [record t time] counts one event at the given timestamp. *)

val bins : t -> (float * float) list
(** [(bin_start_time, events_per_second)] for every bin from time 0 to the
    last recorded event, including empty bins. *)

val total : t -> int
(** Total number of recorded events. *)

val between : t -> float -> float -> int
(** [between t t0 t1] counts events recorded in bins overlapping
    [\[t0, t1\]] — e.g. commits that landed while a node was down (bin
    granularity, so edges are rounded to bin boundaries). *)
