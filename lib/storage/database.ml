(* A secondary index maps (column value, primary key) -> () in an ordered
   B+-tree (ordered regardless of the table's backend); the composite key
   disambiguates duplicate column values. *)
type index = {
  column : int;
  mutable entries : (Value.t list, unit) Btree.t;
}

type table = {
  schema : Schema.t;
  store : Store.t;
  indexes : (string, index) Hashtbl.t;  (* column name -> index *)
}

type undo =
  | U_inserted of string * Store.key
  | U_deleted of string * Value.t array
  | U_updated of string * Value.t array

type t = {
  backend : Store.kind;
  prof : Cost.profile;
  tables : (string, table) Hashtbl.t;
  mutable txn : undo list option;  (* Some log when a txn is open *)
  mutable cost : float;
}

let create backend =
  {
    backend;
    prof = Store.profile backend;
    tables = Hashtbl.create 16;
    txn = None;
    cost = 0.0;
  }

let kind t = t.backend

let charge t c = t.cost <- t.cost +. c

let take_cost t =
  let c = t.cost in
  t.cost <- 0.0;
  c

let create_table t schema =
  let name = schema.Schema.table in
  if Hashtbl.mem t.tables name then Error (name ^ ": table exists")
  else begin
    Hashtbl.replace t.tables name
      { schema; store = Store.create t.backend; indexes = Hashtbl.create 4 };
    Ok ()
  end

let drop_table t name =
  let present = Hashtbl.mem t.tables name in
  Hashtbl.remove t.tables name;
  present

let table t name = Hashtbl.find_opt t.tables name

let schema t name = Option.map (fun tb -> tb.schema) (table t name)

let tables t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []
  |> List.sort String.compare

let row_count t name =
  match table t name with Some tb -> tb.store.Store.count () | None -> 0

let log_undo t u =
  match t.txn with Some log -> t.txn <- Some (u :: log) | None -> ()

(* Physical writes: keep secondary indexes in sync with the row store. *)
let index_key row (idx : index) key = row.(idx.column) :: key

let raw_insert tb key row =
  (match tb.store.Store.find key with
  | Some old ->
      Hashtbl.iter
        (fun _ idx -> idx.entries <- Btree.remove idx.entries (index_key old idx key))
        tb.indexes
  | None -> ());
  tb.store.Store.insert key row;
  Hashtbl.iter
    (fun _ idx -> idx.entries <- Btree.insert idx.entries (index_key row idx key) ())
    tb.indexes

let raw_delete tb key =
  match tb.store.Store.find key with
  | None -> false
  | Some old ->
      ignore (tb.store.Store.delete key);
      Hashtbl.iter
        (fun _ idx -> idx.entries <- Btree.remove idx.entries (index_key old idx key))
        tb.indexes;
      true

let with_table t name f =
  match table t name with
  | None -> Error ("unknown table " ^ name)
  | Some tb -> f tb

let insert t name row =
  with_table t name (fun tb ->
      charge t t.prof.Cost.point_write;
      match Schema.check_row tb.schema row with
      | Error e -> Error e
      | Ok () ->
          let key = Schema.key_of_row tb.schema row in
          if tb.store.Store.find key <> None then
            Error (name ^ ": duplicate key")
          else begin
            raw_insert tb key row;
            log_undo t (U_inserted (name, key));
            Ok ()
          end)

let upsert t name row =
  with_table t name (fun tb ->
      charge t t.prof.Cost.point_write;
      match Schema.check_row tb.schema row with
      | Error e -> Error e
      | Ok () ->
          let key = Schema.key_of_row tb.schema row in
          (match tb.store.Store.find key with
          | Some old -> log_undo t (U_updated (name, old))
          | None -> log_undo t (U_inserted (name, key)));
          raw_insert tb key row;
          Ok ())

let get t name key =
  match table t name with
  | None -> None
  | Some tb ->
      charge t t.prof.Cost.point_read;
      tb.store.Store.find key

let update t name key f =
  with_table t name (fun tb ->
      charge t (t.prof.Cost.point_read +. t.prof.Cost.point_write);
      match tb.store.Store.find key with
      | None -> Ok false
      | Some old ->
          let updated = f (Array.copy old) in
          if
            Store.key_compare (Schema.key_of_row tb.schema updated) key <> 0
          then Error (name ^ ": update must not change the primary key")
          else begin
            match Schema.check_row tb.schema updated with
            | Error e -> Error e
            | Ok () ->
                log_undo t (U_updated (name, old));
                raw_insert tb key updated;
                Ok true
          end)

let delete t name key =
  with_table t name (fun tb ->
      charge t t.prof.Cost.point_write;
      match tb.store.Store.find key with
      | None -> Ok false
      | Some old ->
          ignore (raw_delete tb key);
          log_undo t (U_deleted (name, old));
          Ok true)

let scan t name ~pred =
  with_table t name (fun tb ->
      let out = ref [] in
      let visited = ref 0 in
      tb.store.Store.iter_sorted (fun _ row ->
          incr visited;
          if pred row then out := row :: !out);
      charge t (float_of_int !visited *. t.prof.Cost.scan_row);
      Ok (List.rev !out))

let scan_update t name ~pred ~f =
  with_table t name (fun tb ->
      match scan t name ~pred with
      | Error e -> Error e
      | Ok rows ->
          let result = ref (Ok 0) in
          List.iter
            (fun row ->
              match !result with
              | Error _ -> ()
              | Ok n -> (
                  let key = Schema.key_of_row tb.schema row in
                  match update t name key f with
                  | Error e -> result := Error e
                  | Ok _ -> result := Ok (n + 1)))
            rows;
          !result)

let scan_delete t name ~pred =
  with_table t name (fun tb ->
      match scan t name ~pred with
      | Error e -> Error e
      | Ok rows ->
          List.iter
            (fun row ->
              ignore (delete t name (Schema.key_of_row tb.schema row)))
            rows;
          Ok (List.length rows))

let begin_txn t =
  match t.txn with
  | Some _ ->
      Sim.Invariant.fail "database" "begin_txn: transaction already open"
  | None ->
      charge t t.prof.Cost.txn_overhead;
      t.txn <- Some []

let in_txn t = t.txn <> None

let commit t = t.txn <- None

let rollback t =
  match t.txn with
  | None -> ()
  | Some log ->
      t.txn <- None;
      (* Apply inverses newest-first; bypass logging (txn is closed) but
         keep secondary indexes in sync. *)
      List.iter
        (fun u ->
          match u with
          | U_inserted (name, key) -> (
              match table t name with
              | Some tb -> ignore (raw_delete tb key)
              | None -> ())
          | U_deleted (name, row) | U_updated (name, row) -> (
              match table t name with
              | Some tb -> raw_insert tb (Schema.key_of_row tb.schema row) row
              | None -> ()))
        log

let dump t =
  let out = ref [] in
  List.iter
    (fun name ->
      match table t name with
      | None -> ()
      | Some tb ->
          tb.store.Store.iter_sorted (fun _ row ->
              let bytes =
                Array.fold_left (fun a v -> a + Value.serialized_size v) 0 row
              in
              charge t (Cost.serialize_row ~columns:(Array.length row) ~bytes);
              out := (name, row) :: !out))
    (tables t);
  List.rev !out

let load_rows t rows =
  let result = ref (Ok ()) in
  List.iter
    (fun (name, row) ->
      match !result with
      | Error _ -> ()
      | Ok () -> (
          match table t name with
          | None -> result := Error ("unknown table " ^ name)
          | Some tb -> (
              match Schema.check_row tb.schema row with
              | Error e -> result := Error e
              | Ok () ->
                  let bytes =
                    Array.fold_left
                      (fun a v -> a + Value.serialized_size v)
                      0 row
                  in
                  charge t
                    (Cost.bulk_insert_row ~columns:(Array.length row) ~bytes);
                  raw_insert tb (Schema.key_of_row tb.schema row) row)))
    rows;
  !result

let clear_data t =
  Hashtbl.iter
    (fun _ tb ->
      tb.store.Store.clear ();
      Hashtbl.iter
        (fun _ idx -> idx.entries <- Btree.create ~cmp:Store.key_compare)
        tb.indexes)
    t.tables

(* ---------------- secondary indexes ---------------- *)

let create_index t name column =
  with_table t name (fun tb ->
      let column_up = String.uppercase_ascii column in
      if Hashtbl.mem tb.indexes column_up then
        Error (Printf.sprintf "%s: index on %s exists" name column)
      else
        match
          List.find_index
            (fun c -> String.uppercase_ascii c.Schema.name = column_up)
            tb.schema.Schema.columns
        with
        | None -> Error (Printf.sprintf "%s: unknown column %s" name column)
        | Some col ->
            let idx =
              { column = col; entries = Btree.create ~cmp:Store.key_compare }
            in
            tb.store.Store.iter_sorted (fun key row ->
                charge t t.prof.Cost.point_write;
                idx.entries <- Btree.insert idx.entries (index_key row idx key) ());
            Hashtbl.replace tb.indexes column_up idx;
            Ok ())

let drop_index t name column =
  match table t name with
  | None -> false
  | Some tb ->
      let column_up = String.uppercase_ascii column in
      let present = Hashtbl.mem tb.indexes column_up in
      Hashtbl.remove tb.indexes column_up;
      present

let indexed_columns t name =
  match table t name with
  | None -> []
  | Some tb ->
      Hashtbl.fold (fun c _ acc -> c :: acc) tb.indexes []
      |> List.sort String.compare

(* Equality lookup through a secondary index: visits only matching
   entries (charged as point reads), not the whole table. *)
let lookup_eq t name ~column ~value =
  with_table t name (fun tb ->
      match Hashtbl.find_opt tb.indexes (String.uppercase_ascii column) with
      | None -> Error (Printf.sprintf "%s: no index on %s" name column)
      | Some idx ->
          let out = ref [] in
          Btree.iter_while
            ~lo:(Some [ value ])
            (fun composite () ->
              match composite with
              | v :: pkey when Value.compare v value = 0 ->
                  (* Index leaf traversal plus row fetch: a few sequential
                     reads per matching row, far below a cold point read. *)
                  charge t (t.prof.Cost.scan_row *. 4.0);
                  (match tb.store.Store.find pkey with
                  | Some row -> out := row :: !out
                  | None -> ());
                  true
              | _ -> false)
            idx.entries;
          charge t t.prof.Cost.point_read;
          Ok (List.rev !out))

let content_hash t =
  let acc = ref 0 in
  List.iter
    (fun name ->
      match table t name with
      | None -> ()
      | Some tb ->
          tb.store.Store.iter_sorted (fun key row ->
              let h = Hashtbl.hash (name, key, Array.to_list row) in
              acc := (!acc * 31) + h))
    (tables t);
  !acc
