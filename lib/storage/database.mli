(** An embedded in-memory relational database.

    Tables live in a pluggable {!Store.t}; operations account virtual CPU
    cost against the backend's {!Cost.profile} (read with {!take_cost} by
    the hosting simulator node). Transactions are sequential (one at a
    time, as ShadowDB executes them) with an undo log for rollback. *)

type t

val create : Store.kind -> t
val kind : t -> Store.kind

val create_table : t -> Schema.t -> (unit, string) result
val drop_table : t -> string -> bool
val schema : t -> string -> Schema.t option
val tables : t -> string list
(** Sorted table names. *)

val row_count : t -> string -> int
(** 0 for unknown tables. *)

(** {1 Row operations} — all return [Error] on unknown table, schema
    violation, or (for [insert]) duplicate key. *)

val insert : t -> string -> Value.t array -> (unit, string) result
val upsert : t -> string -> Value.t array -> (unit, string) result
val get : t -> string -> Store.key -> Value.t array option

val update :
  t -> string -> Store.key -> (Value.t array -> Value.t array) ->
  (bool, string) result
(** Apply [f] to the row at the key; [Ok false] if absent. [f] must not
    change the primary key (checked). *)

val delete : t -> string -> Store.key -> (bool, string) result

val scan :
  t -> string -> pred:(Value.t array -> bool) -> (Value.t array list, string) result
(** Full-table scan in key order; charges per-row scan cost. *)

val scan_update :
  t -> string -> pred:(Value.t array -> bool) ->
  f:(Value.t array -> Value.t array) -> (int, string) result
(** Update every matching row; returns the match count. *)

val scan_delete :
  t -> string -> pred:(Value.t array -> bool) -> (int, string) result

(** {1 Transactions} *)

val begin_txn : t -> unit
(** Starts the undo log; nested calls raise a structured
    [Sim.Invariant.Violation] for the ["database"] layer. *)

val in_txn : t -> bool
val commit : t -> unit
val rollback : t -> unit
(** Undo every change since {!begin_txn}. *)

(** {1 Cost accounting} *)

val take_cost : t -> float
(** Virtual CPU seconds accumulated since the last call, and reset. *)

val charge : t -> float -> unit
(** Add an externally computed cost (e.g. serialization). *)

(** {1 Snapshots (state transfer)} *)

val dump : t -> (string * Value.t array) list
(** Every row as [(table, row)], tables sorted, rows in key order; charges
    serialization cost per row. *)

val load_rows : t -> (string * Value.t array) list -> (unit, string) result
(** Bulk-insert rows (state-transfer receive path); charges bulk-insert
    cost per row. Tables must already exist. *)

val clear_data : t -> unit
(** Drop every row from every table, keeping schemas — a receiving replica
    clears before installing a snapshot. *)

(** {1 Secondary indexes} *)

val create_index : t -> string -> string -> (unit, string) result
(** [create_index db table column] builds an ordered secondary index and
    keeps it maintained by every write (including rollback and
    state-transfer loads). *)

val drop_index : t -> string -> string -> bool
val indexed_columns : t -> string -> string list

val lookup_eq :
  t -> string -> column:string -> value:Value.t -> (Value.t array list, string) result
(** Equality lookup through the secondary index on [column] (charged as
    point reads); [Error] when no such index exists. *)

val content_hash : t -> int
(** Order-insensitive digest of schemas and rows — used by the
    state-agreement tests to compare replicas across diverse backends. *)
