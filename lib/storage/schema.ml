type column = { name : string; ty : Value.ty }

type t = { table : string; columns : column list; pkey : int list }

let v ~table ~columns ~pkey =
  let names = List.map fst columns in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then Sim.Invariant.fail "schema" "v: duplicate column in table %s" table;
  let index name =
    match List.find_index (String.equal name) names with
    | Some i -> i
    | None ->
        Sim.Invariant.fail "schema" "v: unknown pkey column %s in table %s"
          name table
  in
  {
    table;
    columns = List.map (fun (name, ty) -> { name; ty }) columns;
    pkey = List.map index pkey;
  }

let arity t = List.length t.columns

let column_index t name =
  List.find_index (fun c -> String.equal c.name name) t.columns

let column_ty t i = (List.nth t.columns i).ty

let check_row t row =
  if Array.length row <> arity t then
    Error
      (Printf.sprintf "%s: arity mismatch (%d vs %d)" t.table
         (Array.length row) (arity t))
  else begin
    let bad = ref None in
    List.iteri
      (fun i c ->
        if !bad = None && not (Value.matches c.ty row.(i)) then
          bad := Some (Printf.sprintf "%s.%s: type mismatch" t.table c.name))
      t.columns;
    List.iter
      (fun i ->
        if !bad = None && row.(i) = Value.Null then
          bad := Some (Printf.sprintf "%s: NULL primary key" t.table))
      t.pkey;
    match !bad with None -> Ok () | Some e -> Error e
  end

let key_of_row t row = List.map (fun i -> row.(i)) t.pkey

let pp fmt t =
  Format.fprintf fmt "%s(%s)" t.table
    (String.concat ", "
       (List.map (fun c -> c.name ^ " " ^ Value.ty_to_string c.ty) t.columns))
