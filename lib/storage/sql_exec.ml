module A = Sql_ast

type outcome =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int
  | Done

exception Eval_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

let column_index schema name =
  let target = String.uppercase_ascii name in
  let rec go i = function
    | [] -> fail "unknown column %s" name
    | c :: rest ->
        if String.uppercase_ascii c.Schema.name = target then i
        else go (i + 1) rest
  in
  go 0 schema.Schema.columns

let to_bool = function
  | Value.Bool b -> b
  | Value.Null -> false
  | v -> fail "expected boolean, got %s" (Value.to_string v)

let rec eval_exn schema row (e : A.expr) =
  match e with
  | A.Col name -> row.(column_index schema name)
  | A.Lit v -> v
  | A.Not e -> Value.Bool (not (to_bool (eval_exn schema row e)))
  | A.Between (e, lo, hi) ->
      let v = eval_exn schema row e in
      let vlo = eval_exn schema row lo in
      let vhi = eval_exn schema row hi in
      Value.Bool
        (v <> Value.Null && Value.compare v vlo >= 0 && Value.compare v vhi <= 0)
  | A.In_list (e, vs) ->
      let v = eval_exn schema row e in
      Value.Bool (List.exists (fun w -> Value.compare v w = 0) vs)
  | A.Binop (op, a, b) -> (
      let va = eval_exn schema row a in
      let vb = eval_exn schema row b in
      let cmp () = Value.compare va vb in
      match op with
      | A.Eq -> Value.Bool (cmp () = 0)
      | A.Neq -> Value.Bool (cmp () <> 0)
      | A.Lt -> Value.Bool (va <> Value.Null && vb <> Value.Null && cmp () < 0)
      | A.Le -> Value.Bool (va <> Value.Null && vb <> Value.Null && cmp () <= 0)
      | A.Gt -> Value.Bool (va <> Value.Null && vb <> Value.Null && cmp () > 0)
      | A.Ge -> Value.Bool (va <> Value.Null && vb <> Value.Null && cmp () >= 0)
      | A.And -> Value.Bool (to_bool va && to_bool vb)
      | A.Or -> Value.Bool (to_bool va || to_bool vb)
      | A.Add -> Value.add va vb
      | A.Sub -> (
          match (va, vb) with
          | Value.Int x, Value.Int y -> Value.Int (x - y)
          | Value.Float x, Value.Float y -> Value.Float (x -. y)
          | Value.Int x, Value.Float y -> Value.Float (float_of_int x -. y)
          | Value.Float x, Value.Int y -> Value.Float (x -. float_of_int y)
          | _ -> fail "non-numeric subtraction")
      | A.Mul -> (
          match (va, vb) with
          | Value.Int x, Value.Int y -> Value.Int (x * y)
          | Value.Float x, Value.Float y -> Value.Float (x *. y)
          | Value.Int x, Value.Float y -> Value.Float (float_of_int x *. y)
          | Value.Float x, Value.Int y -> Value.Float (x *. float_of_int y)
          | _ -> fail "non-numeric multiplication"))

let eval ~schema row e =
  try Ok (eval_exn schema row e) with Eval_error m -> Error m

(* Literal evaluation (INSERT values): no row context. *)
let eval_literal e =
  let dummy_schema =
    { Schema.table = ""; columns = []; pkey = [] }
  in
  eval_exn dummy_schema [||] e

(* Detect [pk = literal] (possibly flipped) for single-column keys. *)
let pk_lookup schema (where : A.expr option) =
  match (schema.Schema.pkey, where) with
  | [ pk_idx ], Some (A.Binop (A.Eq, A.Col c, A.Lit v))
  | [ pk_idx ], Some (A.Binop (A.Eq, A.Lit v, A.Col c)) ->
      let pk_name = (List.nth schema.Schema.columns pk_idx).Schema.name in
      if String.uppercase_ascii c = String.uppercase_ascii pk_name then Some [ v ]
      else None
  | _ -> None

let matches schema where row =
  match where with
  | None -> true
  | Some e -> to_bool (eval_exn schema row e)

let with_schema db table f =
  match Database.schema db table with
  | None -> Error ("unknown table " ^ table)
  | Some schema -> (
      try f schema with Eval_error m -> Error m)

(* Detect [col = literal] over a secondary-indexed column. *)
let index_lookup db table schema (where : A.expr option) =
  match where with
  | Some (A.Binop (A.Eq, A.Col c, A.Lit v))
  | Some (A.Binop (A.Eq, A.Lit v, A.Col c)) ->
      let c = String.uppercase_ascii c in
      if List.mem c (Database.indexed_columns db table) then Some (c, v)
      else None
  | _ -> ignore schema; None

let compute_aggregates schema rows aggs =
  let col_values col =
    let i = column_index schema col in
    List.filter_map
      (fun row -> if row.(i) = Value.Null then None else Some row.(i))
      rows
  in
  let numeric col f init =
    List.fold_left f init (col_values col)
  in
  List.map
    (function
      | A.Count_star -> Value.Int (List.length rows)
      | A.Count col -> Value.Int (List.length (col_values col))
      | A.Sum col -> numeric col Value.add (Value.Int 0)
      | A.Min_of col -> (
          match col_values col with
          | [] -> Value.Null
          | v :: rest ->
              List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v rest)
      | A.Max_of col -> (
          match col_values col with
          | [] -> Value.Null
          | v :: rest ->
              List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v rest)
      | A.Avg col -> (
          match col_values col with
          | [] -> Value.Null
          | vs ->
              let sum = List.fold_left Value.add (Value.Int 0) vs in
              let n = float_of_int (List.length vs) in
              let total =
                match sum with
                | Value.Int i -> float_of_int i
                | Value.Float f -> f
                | _ -> fail "AVG over non-numeric column"
              in
              Value.Float (total /. n)))
    aggs

let select db ~table ~projection ~where ~order_by ~limit =
  with_schema db table (fun schema ->
      let rows =
        match pk_lookup schema where with
        | Some key -> (
            match Database.get db table key with
            | Some row -> Ok [ row ]
            | None -> Ok [])
        | None -> (
            (* Planner: use a secondary index for equality on an indexed
               column; fall back to a full scan. *)
            match index_lookup db table schema where with
            | Some (col, v) -> Database.lookup_eq db table ~column:col ~value:v
            | None -> Database.scan db table ~pred:(matches schema where))
      in
      match rows with
      | Error e -> Error e
      | Ok rows ->
          let rows =
            match order_by with
            | None -> rows
            | Some (col, dir) ->
                let i = column_index schema col in
                let cmp a b = Value.compare a.(i) b.(i) in
                let sorted = List.stable_sort cmp rows in
                if dir = A.Desc then List.rev sorted else sorted
          in
          let rows =
            match limit with
            | None -> rows
            | Some n -> List.filteri (fun i _ -> i < n) rows
          in
          match projection with
          | A.Aggregates aggs ->
              Ok
                (Rows
                   {
                     columns = List.map A.aggregate_str aggs;
                     rows = [ Array.of_list (compute_aggregates schema rows aggs) ];
                   })
          | A.Star | A.Cols _ ->
          let columns, project =
            match projection with
            | A.Aggregates _ -> assert false
            | A.Star ->
                ( List.map (fun c -> c.Schema.name) schema.Schema.columns,
                  fun row -> row )
            | A.Cols cs ->
                let idxs = List.map (column_index schema) cs in
                (cs, fun row -> Array.of_list (List.map (fun i -> row.(i)) idxs))
          in
          Ok (Rows { columns; rows = List.map project rows }))

let insert db ~table ~columns ~values =
  with_schema db table (fun schema ->
      let arity = Schema.arity schema in
      let build tuple =
        let vals = List.map eval_literal tuple in
        match columns with
        | None ->
            if List.length vals <> arity then fail "arity mismatch in INSERT";
            Array.of_list vals
        | Some cols ->
            if List.length cols <> List.length vals then
              fail "column/value count mismatch in INSERT";
            let row = Array.make arity Value.Null in
            List.iter2
              (fun c v -> row.(column_index schema c) <- v)
              cols vals;
            row
      in
      let result = ref (Ok 0) in
      List.iter
        (fun tuple ->
          match !result with
          | Error _ -> ()
          | Ok n -> (
              match Database.insert db table (build tuple) with
              | Ok () -> result := Ok (n + 1)
              | Error e -> result := Error e))
        values;
      match !result with Ok n -> Ok (Affected n) | Error e -> Error e)

let update db ~table ~assignments ~where =
  with_schema db table (fun schema ->
      let apply row =
        let row = Array.copy row in
        (* Right-hand sides see the pre-update row: evaluate all, then
           assign. *)
        let updates =
          List.map (fun (col, e) -> (column_index schema col, eval_exn schema row e)) assignments
        in
        List.iter (fun (i, v) -> row.(i) <- v) updates;
        row
      in
      match pk_lookup schema where with
      | Some key -> (
          match Database.update db table key apply with
          | Ok true -> Ok (Affected 1)
          | Ok false -> Ok (Affected 0)
          | Error e -> Error e)
      | None -> (
          match
            Database.scan_update db table ~pred:(matches schema where) ~f:apply
          with
          | Ok n -> Ok (Affected n)
          | Error e -> Error e))

let delete db ~table ~where =
  with_schema db table (fun schema ->
      match pk_lookup schema where with
      | Some key -> (
          match Database.delete db table key with
          | Ok true -> Ok (Affected 1)
          | Ok false -> Ok (Affected 0)
          | Error e -> Error e)
      | None -> (
          match Database.scan_delete db table ~pred:(matches schema where) with
          | Ok n -> Ok (Affected n)
          | Error e -> Error e))

let exec db (stmt : A.stmt) =
  match stmt with
  | A.Create_table { name; columns; pkey } -> (
      match
        Database.create_table db (Schema.v ~table:name ~columns ~pkey)
      with
      | Ok () -> Ok Done
      | Error e -> Error e
      | exception Sim.Invariant.Violation { detail; _ } -> Error detail)
  | A.Create_index { table; column } -> (
      match Database.create_index db table column with
      | Ok () -> Ok Done
      | Error e -> Error e)
  | A.Insert { table; columns; values } -> insert db ~table ~columns ~values
  | A.Select { table; projection; where; order_by; limit } ->
      select db ~table ~projection ~where ~order_by ~limit
  | A.Update { table; assignments; where } -> update db ~table ~assignments ~where
  | A.Delete { table; where } -> delete db ~table ~where
  | A.Begin ->
      if Database.in_txn db then Error "transaction already open"
      else begin
        Database.begin_txn db;
        Ok Done
      end
  | A.Commit ->
      Database.commit db;
      Ok Done
  | A.Rollback ->
      Database.rollback db;
      Ok Done

let exec_sql db src =
  match Sql_parser.parse src with
  | Error e -> Error ("parse error: " ^ e)
  | Ok stmt -> exec db stmt
