type t =
  | Null
  | Int of int
  | Float of float
  | Text of string
  | Bool of bool

type ty = T_int | T_float | T_text | T_bool

let type_of = function
  | Null -> None
  | Int _ -> Some T_int
  | Float _ -> Some T_float
  | Text _ -> Some T_text
  | Bool _ -> Some T_bool

let matches ty v =
  match type_of v with
  | None -> true
  | Some t -> (
      t = ty
      ||
      (* Ints are admissible in float columns. *)
      match (t, ty) with T_int, T_float -> true | _ -> false)

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Text _ -> 3

let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Text x, Text y -> String.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Null, Null -> 0
  | _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let add a b =
  match (a, b) with
  | Int x, Int y -> Int (x + y)
  | Float x, Float y -> Float (x +. y)
  | Int x, Float y -> Float (float_of_int x +. y)
  | Float x, Int y -> Float (x +. float_of_int y)
  | _ -> Sim.Invariant.fail "value" "add: non-numeric operands"

let serialized_size = function
  | Null -> 1
  | Int _ -> 9
  | Float _ -> 9
  | Bool _ -> 2
  | Text s -> 5 + String.length s

let pp fmt = function
  | Null -> Format.fprintf fmt "NULL"
  | Int i -> Format.fprintf fmt "%d" i
  | Float f -> Format.fprintf fmt "%g" f
  | Text s -> Format.fprintf fmt "'%s'" s
  | Bool b -> Format.fprintf fmt "%b" b

let to_string v = Format.asprintf "%a" pp v

let ty_to_string = function
  | T_int -> "INT"
  | T_float -> "FLOAT"
  | T_text -> "TEXT"
  | T_bool -> "BOOL"

let ty_of_string s =
  match String.uppercase_ascii s with
  | "INT" | "INTEGER" | "BIGINT" -> Some T_int
  | "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" -> Some T_float
  | "TEXT" | "VARCHAR" | "CHAR" | "STRING" -> Some T_text
  | "BOOL" | "BOOLEAN" -> Some T_bool
  | _ -> None
