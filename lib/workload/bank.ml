module Database = Storage.Database
module Schema = Storage.Schema
module Value = Storage.Value


let table = "ACCOUNTS"

let schema ?(wide = false) () =
  let base =
    [ ("ID", Value.T_int); ("OWNER", Value.T_text); ("BALANCE", Value.T_int) ]
  in
  let columns = if wide then base @ [ ("NOTES", Value.T_text) ] else base in
  Schema.v ~table ~columns ~pkey:[ "ID" ]

let setup ?(rows = 50_000) ?(wide = false) db =
  (match Database.create_table db (schema ~wide ()) with
  | Ok () -> ()
  | Error e -> invalid_arg e);
  (* ≈1 KB rows in the wide variant (paper Fig. 10(b)), 16 B otherwise. *)
  let pad = if wide then String.make 990 'x' else "" in
  for i = 0 to rows - 1 do
    let row =
      if wide then
        [| Value.Int i; Value.Text "o"; Value.Int 100; Value.Text pad |]
      else [| Value.Int i; Value.Text "o"; Value.Int 100 |]
    in
    match Database.insert db table row with
    | Ok () -> ()
    | Error e -> invalid_arg e
  done

let balance_col db row =
  match Database.schema db table with
  | Some s -> (
      match Schema.column_index s "BALANCE" with
      | Some i -> row.(i)
      | None -> Value.Null)
  | None -> Value.Null

let get_int = function Value.Int i -> i | _ -> invalid_arg "expected int"

let proc_deposit db = function
  | [ Value.Int id; Value.Int amount ] -> (
      match
        Database.update db table [ Value.Int id ] (fun row ->
            row.(2) <- Value.add row.(2) (Value.Int amount);
            row)
      with
      | Ok true -> Ok []
      | Ok false -> Error "no such account"
      | Error e -> Error e)
  | _ -> Error "deposit: bad parameters"

let proc_balance db = function
  | [ Value.Int id ] -> (
      match Database.get db table [ Value.Int id ] with
      | Some row -> Ok [ [| row.(2) |] ]
      | None -> Error "no such account")
  | _ -> Error "balance: bad parameters"

let proc_transfer db = function
  | [ Value.Int src; Value.Int dst; Value.Int amount ] -> (
      match Database.get db table [ Value.Int src ] with
      | None -> Error "no such source account"
      | Some row ->
          let bal = get_int row.(2) in
          if bal < amount then Error "insufficient funds"
          else
            let debit =
              Database.update db table [ Value.Int src ] (fun r ->
                  r.(2) <- Value.Int (get_int r.(2) - amount);
                  r)
            in
            let credit =
              Database.update db table [ Value.Int dst ] (fun r ->
                  r.(2) <- Value.add r.(2) (Value.Int amount);
                  r)
            in
            (match (debit, credit) with
            | Ok true, Ok true -> Ok []
            | Ok false, _ | _, Ok false -> Error "no such account"
            | Error e, _ | _, Error e -> Error e))
  | _ -> Error "transfer: bad parameters"

(* The 2PC debit leg of a cross-shard transfer: the prepare trial runs
   it against the source shard and votes no on insufficient funds. *)
let proc_withdraw db = function
  | [ Value.Int id; Value.Int amount ] -> (
      match Database.get db table [ Value.Int id ] with
      | None -> Error "no such account"
      | Some row ->
          if get_int row.(2) < amount then Error "insufficient funds"
          else (
            match
              Database.update db table [ Value.Int id ] (fun r ->
                  r.(2) <- Value.Int (get_int r.(2) - amount);
                  r)
            with
            | Ok true -> Ok []
            | Ok false -> Error "no such account"
            | Error e -> Error e))
  | _ -> Error "withdraw: bad parameters"

(* Read-only multi-account audit: one [|id; balance|] row per requested
   account that exists, in request order. Cross-shard audits merge each
   shard's rows in shard order — the merged-read property the qcheck
   suite compares against an unsharded run. *)
let proc_audit db params =
  let rows =
    List.filter_map
      (fun p ->
        match p with
        | Value.Int id -> (
            match Database.get db table [ Value.Int id ] with
            | Some row -> Some [| Value.Int id; row.(2) |]
            | None -> None)
        | _ -> None)
      params
  in
  if List.for_all (function Value.Int _ -> true | _ -> false) params then
    Ok rows
  else Error "audit: bad parameters"

let registry () =
  Shadowdb.Txn.registry
    [
      ("deposit", proc_deposit);
      ("balance", proc_balance);
      ("transfer", proc_transfer);
      ("withdraw", proc_withdraw);
      ("audit", proc_audit);
    ]

let deposit ~account ~amount =
  ("deposit", [ Value.Int account; Value.Int amount ])

let balance ~account = ("balance", [ Value.Int account ])

let transfer ~src ~dst ~amount =
  ("transfer", [ Value.Int src; Value.Int dst; Value.Int amount ])

let withdraw ~account ~amount =
  ("withdraw", [ Value.Int account; Value.Int amount ])

let audit ~accounts = ("audit", List.map (fun id -> Value.Int id) accounts)

let random_deposit rng ~rows =
  deposit ~account:(Sim.Prng.int rng rows) ~amount:(1 + Sim.Prng.int rng 100)

(* ---- Sharding ---------------------------------------------------- *)

module Shard = Shadowdb.Shard
module Txn = Shadowdb.Txn

let key id = { Shard.table; id }

let shard_keys (t : Txn.t) =
  match (t.Txn.kind, t.Txn.params) with
  | ("deposit" | "withdraw"), Value.Int id :: _ -> [ key id ]
  | "balance", [ Value.Int id ] -> [ key id ]
  | "transfer", Value.Int src :: Value.Int dst :: _ ->
      [ key src; key dst ]
  | "audit", ids ->
      List.filter_map
        (function Value.Int id -> Some (key id) | _ -> None)
        ids
  | _ -> []

(* Decompose a cross-shard transaction into per-shard sub-transactions
   carrying the parent's (client, seq) identity — the 2PC xid. Only
   consulted when [shard_keys] spans more than one shard. *)
let shard_split ~shards (t : Txn.t) =
  let sub kind params = { t with Txn.kind; params } in
  let of_key k = Shard.shard_of_key ~shards k in
  match (t.Txn.kind, t.Txn.params) with
  | "transfer", [ Value.Int src; Value.Int dst; Value.Int amount ] ->
      [
        (of_key (key src), sub "withdraw" [ Value.Int src; Value.Int amount ]);
        (of_key (key dst), sub "deposit" [ Value.Int dst; Value.Int amount ]);
      ]
  | "audit", ids ->
      (* Group the requested ids by owning shard, preserving request
         order within each shard; merged shard-order results then match
         an unsharded audit over shard-sorted ids. *)
      let by_shard = Hashtbl.create 8 in
      List.iter
        (fun p ->
          match p with
          | Value.Int id ->
              let s = of_key (key id) in
              let prev =
                Option.value (Hashtbl.find_opt by_shard s) ~default:[]
              in
              Hashtbl.replace by_shard s (p :: prev)
          | _ -> ())
        ids;
      Hashtbl.fold
        (fun s ps acc -> (s, sub "audit" (List.rev ps)) :: acc)
        by_shard []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
  | _ -> (
      match shard_keys t with
      | k :: _ -> [ (of_key k, t) ]
      | [] -> [ (0, t) ])

let router ~shards =
  { Shard.shards; keys_of = shard_keys; split = shard_split ~shards }

(* Shard-local population: each shard holds exactly the rows the
   partition function assigns it, so the union over shards equals the
   unsharded [setup] and the global balance sum is [rows * 100]. *)
let setup_shard ~rows ~shards shard db =
  (match Database.create_table db (schema ()) with
  | Ok () -> ()
  | Error e -> invalid_arg e);
  for i = 0 to rows - 1 do
    if Shard.shard_of_key ~shards (key i) = shard then
      match
        Database.insert db table
          [| Value.Int i; Value.Text "o"; Value.Int 100 |]
      with
      | Ok () -> ()
      | Error e -> invalid_arg e
  done

let total_balance db =
  match Database.scan db table ~pred:(fun _ -> true) with
  | Ok rows ->
      List.fold_left (fun acc row -> acc + get_int (balance_col db row)) 0 rows
  | Error _ -> 0
