(** The paper's micro-benchmark: a bank-accounts database.

    50,000 rows of 16 bytes (id, owner, balance); update transactions
    deposit money on a randomly selected account (Sec. IV-B). Rows can be
    padded to 1 KB with a fourth column for the state-transfer experiment
    of Fig. 10(b). *)

val table : string
(** "ACCOUNTS" *)

val schema : ?wide:bool -> unit -> Storage.Schema.t
(** 3 columns (id, owner, balance); [wide] adds a 4th padding column. *)

val setup : ?rows:int -> ?wide:bool -> Storage.Database.t -> unit
(** Create and populate the table (default 50,000 rows). *)

val registry : unit -> Shadowdb.Txn.registry
(** Procedures: ["deposit"] (id, amount), ["balance"] (id), ["transfer"]
    (src, dst, amount — aborts on insufficient funds), ["withdraw"]
    (id, amount — the 2PC debit leg, aborts on insufficient funds), and
    ["audit"] (ids… — one [|id; balance|] row per existing account). *)

val deposit : account:int -> amount:int -> string * Storage.Value.t list
(** Transaction descriptor for {!Shadowdb.System.Make.spawn_clients}. *)

val balance : account:int -> string * Storage.Value.t list
val transfer : src:int -> dst:int -> amount:int -> string * Storage.Value.t list
val withdraw : account:int -> amount:int -> string * Storage.Value.t list
val audit : accounts:int list -> string * Storage.Value.t list

val random_deposit : Sim.Prng.t -> rows:int -> string * Storage.Value.t list
(** A deposit on a uniformly random account (the paper's workload). *)

val total_balance : Storage.Database.t -> int
(** Sum of all balances (conservation checks in tests). *)

(** {1 Sharding} *)

val shard_keys : Shadowdb.Txn.t -> Shadowdb.Shard.key list
(** Every account row the transaction may touch. *)

val shard_split :
  shards:int -> Shadowdb.Txn.t -> (int * Shadowdb.Txn.t) list
(** Per-shard sub-transactions carrying the parent's (client, seq)
    identity: a transfer becomes a withdraw on the source shard plus a
    deposit on the destination shard; an audit is partitioned by owning
    shard. *)

val router : shards:int -> Shadowdb.Shard.router
(** The bank's shard router over [shard_keys]/[shard_split]. *)

val setup_shard : rows:int -> shards:int -> int -> Storage.Database.t -> unit
(** [setup_shard ~rows ~shards s db] populates shard [s] with exactly
    its partition of the [rows] accounts (each with balance 100): the
    union over all shards equals the unsharded {!setup}, and the global
    sum is [rows * 100]. *)
