module Database = Storage.Database
module Schema = Storage.Schema
module Value = Storage.Value

type scale = {
  districts : int;
  customers_per_district : int;
  items : int;
  initial_orders_per_district : int;
}

let spec_scale =
  {
    districts = 10;
    customers_per_district = 3000;
    items = 100_000;
    initial_orders_per_district = 3000;
  }

let small_scale =
  {
    districts = 10;
    customers_per_district = 60;
    items = 1000;
    initial_orders_per_district = 30;
  }

let w_id = 1 (* single warehouse, as in the paper's configuration *)

(* Schemas *)

let schemas =
  [
    Schema.v ~table:"WAREHOUSE"
      ~columns:
        [
          ("W_ID", Value.T_int);
          ("W_NAME", Value.T_text);
          ("W_TAX", Value.T_float);
          ("W_YTD", Value.T_int);
        ]
      ~pkey:[ "W_ID" ];
    Schema.v ~table:"DISTRICT"
      ~columns:
        [
          ("D_W_ID", Value.T_int);
          ("D_ID", Value.T_int);
          ("D_NAME", Value.T_text);
          ("D_TAX", Value.T_float);
          ("D_YTD", Value.T_int);
          ("D_NEXT_O_ID", Value.T_int);
        ]
      ~pkey:[ "D_W_ID"; "D_ID" ];
    Schema.v ~table:"CUSTOMER"
      ~columns:
        [
          ("C_W_ID", Value.T_int);
          ("C_D_ID", Value.T_int);
          ("C_ID", Value.T_int);
          ("C_LAST", Value.T_text);
          ("C_BALANCE", Value.T_int);
          ("C_YTD_PAYMENT", Value.T_int);
          ("C_PAYMENT_CNT", Value.T_int);
          ("C_DELIVERY_CNT", Value.T_int);
        ]
      ~pkey:[ "C_W_ID"; "C_D_ID"; "C_ID" ];
    Schema.v ~table:"HISTORY"
      ~columns:
        [
          ("H_ID", Value.T_int);
          ("H_C_ID", Value.T_int);
          ("H_D_ID", Value.T_int);
          ("H_W_ID", Value.T_int);
          ("H_AMOUNT", Value.T_int);
        ]
      ~pkey:[ "H_ID" ];
    Schema.v ~table:"ORDERS"
      ~columns:
        [
          ("O_W_ID", Value.T_int);
          ("O_D_ID", Value.T_int);
          ("O_ID", Value.T_int);
          ("O_C_ID", Value.T_int);
          ("O_OL_CNT", Value.T_int);
          ("O_CARRIER_ID", Value.T_int);
        ]
      ~pkey:[ "O_W_ID"; "O_D_ID"; "O_ID" ];
    Schema.v ~table:"NEW_ORDER"
      ~columns:
        [
          ("NO_W_ID", Value.T_int);
          ("NO_D_ID", Value.T_int);
          ("NO_O_ID", Value.T_int);
        ]
      ~pkey:[ "NO_W_ID"; "NO_D_ID"; "NO_O_ID" ];
    Schema.v ~table:"ORDER_LINE"
      ~columns:
        [
          ("OL_W_ID", Value.T_int);
          ("OL_D_ID", Value.T_int);
          ("OL_O_ID", Value.T_int);
          ("OL_NUMBER", Value.T_int);
          ("OL_I_ID", Value.T_int);
          ("OL_QUANTITY", Value.T_int);
          ("OL_AMOUNT", Value.T_int);
          ("OL_DELIVERED", Value.T_bool);
        ]
      ~pkey:[ "OL_W_ID"; "OL_D_ID"; "OL_O_ID"; "OL_NUMBER" ];
    Schema.v ~table:"ITEM"
      ~columns:
        [ ("I_ID", Value.T_int); ("I_NAME", Value.T_text); ("I_PRICE", Value.T_int) ]
      ~pkey:[ "I_ID" ];
    Schema.v ~table:"STOCK"
      ~columns:
        [
          ("S_W_ID", Value.T_int);
          ("S_I_ID", Value.T_int);
          ("S_QUANTITY", Value.T_int);
          ("S_YTD", Value.T_int);
          ("S_ORDER_CNT", Value.T_int);
        ]
      ~pkey:[ "S_W_ID"; "S_I_ID" ];
  ]

let ok_exn = function Ok x -> x | Error e -> invalid_arg e

(* Secondary indexes covering the benchmark's hot lookups (order-status by
   customer, delivery and stock-level by district). *)
let index_plan =
  [ ("ORDERS", "O_C_ID"); ("ORDER_LINE", "OL_D_ID"); ("NEW_ORDER", "NO_D_ID") ]

let setup ?(scale = small_scale) db =
  List.iter (fun s -> ok_exn (Database.create_table db s)) schemas;
  List.iter (fun (t, c) -> ok_exn (Database.create_index db t c)) index_plan;
  let ins table row = ok_exn (Database.insert db table row) in
  ins "WAREHOUSE"
    [| Value.Int w_id; Value.Text "W1"; Value.Float 0.1; Value.Int 0 |];
  for i = 1 to scale.items do
    ins "ITEM"
      [| Value.Int i; Value.Text (Printf.sprintf "item%d" i); Value.Int (100 + (i mod 900)) |];
    ins "STOCK"
      [| Value.Int w_id; Value.Int i; Value.Int 91; Value.Int 0; Value.Int 0 |]
  done;
  for d = 1 to scale.districts do
    ins "DISTRICT"
      [|
        Value.Int w_id;
        Value.Int d;
        Value.Text (Printf.sprintf "D%d" d);
        Value.Float 0.05;
        Value.Int 0;
        Value.Int (scale.initial_orders_per_district + 1);
      |];
    for c = 1 to scale.customers_per_district do
      ins "CUSTOMER"
        [|
          Value.Int w_id;
          Value.Int d;
          Value.Int c;
          Value.Text (Printf.sprintf "LAST%d" (c mod 100));
          Value.Int (-1000);
          Value.Int 1000;
          Value.Int 1;
          Value.Int 0;
        |]
    done;
    (* Initial orders: one per o_id, round-robin customers, 5 lines each;
       the most recent third are undelivered (rows in NEW_ORDER). *)
    for o = 1 to scale.initial_orders_per_district do
      let c = ((o - 1) mod scale.customers_per_district) + 1 in
      let ol_cnt = 5 in
      let delivered = o <= scale.initial_orders_per_district * 2 / 3 in
      ins "ORDERS"
        [|
          Value.Int w_id;
          Value.Int d;
          Value.Int o;
          Value.Int c;
          Value.Int ol_cnt;
          (if delivered then Value.Int 1 else Value.Null);
        |];
      if not delivered then
        ins "NEW_ORDER" [| Value.Int w_id; Value.Int d; Value.Int o |];
      for n = 1 to ol_cnt do
        let item = (((o * 7) + (n * 13)) mod scale.items) + 1 in
        ins "ORDER_LINE"
          [|
            Value.Int w_id;
            Value.Int d;
            Value.Int o;
            Value.Int n;
            Value.Int item;
            Value.Int 5;
            Value.Int 250;
            Value.Bool delivered;
          |]
      done
    done
  done

(* Helpers *)

let get_i = function Value.Int i -> i | _ -> invalid_arg "int expected"

let vi i = Value.Int i

exception Abort of string

let find db table key =
  match Database.get db table key with
  | Some row -> row
  | None -> raise (Abort (table ^ ": row not found"))

let upd db table key f =
  match Database.update db table key f with
  | Ok true -> ()
  | Ok false -> raise (Abort (table ^ ": row not found"))
  | Error e -> raise (Abort e)

let ins db table row =
  match Database.insert db table row with
  | Ok () -> ()
  | Error e -> raise (Abort e)

(* Equality retrieval through a secondary index when available, filtered
   by [pred]; falls back to a scan on unindexed deployments. *)
let where db table column value pred =
  match Database.lookup_eq db table ~column ~value with
  | Ok rows -> List.filter pred rows
  | Error _ -> (
      match Database.scan db table ~pred with
      | Ok rows -> rows
      | Error e -> raise (Abort e))

(* Transaction procedures. Parameters fully determine execution, so every
   replica aborts or commits identically (paper's determinism premise). *)

(* new_order w d c [i1;q1; i2;q2; ...] — an invalid item id aborts the
   whole transaction (the TPC-C 1% rollback rule). *)
let proc_new_order db params =
  match params with
  | Value.Int d :: Value.Int c :: rest when List.length rest mod 2 = 0 ->
      let rec pairs = function
        | [] -> []
        | Value.Int i :: Value.Int q :: tl -> (i, q) :: pairs tl
        | _ -> raise (Abort "new_order: bad item list")
      in
      let items = pairs rest in
      if items = [] then raise (Abort "new_order: empty order");
      let _w = find db "WAREHOUSE" [ vi w_id ] in
      let district = find db "DISTRICT" [ vi w_id; vi d ] in
      let o_id = get_i district.(5) in
      upd db "DISTRICT" [ vi w_id; vi d ] (fun r ->
          r.(5) <- vi (o_id + 1);
          r);
      let _cust = find db "CUSTOMER" [ vi w_id; vi d; vi c ] in
      ins db "ORDERS"
        [| vi w_id; vi d; vi o_id; vi c; vi (List.length items); Value.Null |];
      ins db "NEW_ORDER" [| vi w_id; vi d; vi o_id |];
      let total = ref 0 in
      List.iteri
        (fun idx (item, qty) ->
          let irow = find db "ITEM" [ vi item ] in
          let price = get_i irow.(2) in
          upd db "STOCK" [ vi w_id; vi item ] (fun r ->
              let q = get_i r.(2) in
              r.(2) <- vi (if q - qty >= 10 then q - qty else q - qty + 91);
              r.(3) <- vi (get_i r.(3) + qty);
              r.(4) <- vi (get_i r.(4) + 1);
              r);
          let amount = price * qty in
          total := !total + amount;
          ins db "ORDER_LINE"
            [|
              vi w_id; vi d; vi o_id; vi (idx + 1); vi item; vi qty;
              vi amount; Value.Bool false;
            |])
        items;
      Ok [ [| vi o_id; vi !total |] ]
  | _ -> Error "new_order: bad parameters"

(* payment w d c amount h_id *)
let proc_payment db params =
  match params with
  | [ Value.Int d; Value.Int c; Value.Int amount; Value.Int h_id ] ->
      upd db "WAREHOUSE" [ vi w_id ] (fun r ->
          r.(3) <- vi (get_i r.(3) + amount);
          r);
      upd db "DISTRICT" [ vi w_id; vi d ] (fun r ->
          r.(4) <- vi (get_i r.(4) + amount);
          r);
      upd db "CUSTOMER" [ vi w_id; vi d; vi c ] (fun r ->
          r.(4) <- vi (get_i r.(4) - amount);
          r.(5) <- vi (get_i r.(5) + amount);
          r.(6) <- vi (get_i r.(6) + 1);
          r);
      ins db "HISTORY" [| vi h_id; vi c; vi d; vi w_id; vi amount |];
      Ok []
  | _ -> Error "payment: bad parameters"

(* order_status d c *)
let proc_order_status db params =
  match params with
  | [ Value.Int d; Value.Int c ] ->
      let cust = find db "CUSTOMER" [ vi w_id; vi d; vi c ] in
      let orders =
        where db "ORDERS" "O_C_ID" (vi c) (fun r ->
            get_i r.(1) = d && get_i r.(3) = c)
      in
      let last =
        List.fold_left
          (fun acc r -> if acc = None || get_i r.(2) > get_i (Option.get acc).(2) then Some r else acc)
          None orders
      in
      (match last with
      | None -> Ok [ [| cust.(4) |] ]
      | Some o ->
          let o_id = get_i o.(2) in
          let lines =
            where db "ORDER_LINE" "OL_D_ID" (vi d) (fun r ->
                get_i r.(1) = d && get_i r.(2) = o_id)
          in
          Ok ([| cust.(4); o.(2); o.(5) |] :: lines))
  | _ -> Error "order_status: bad parameters"

(* delivery carrier *)
let proc_delivery db params =
  match params with
  | [ Value.Int carrier ] ->
      let delivered = ref 0 in
      let districts =
        ok_exn (Database.scan db "DISTRICT" ~pred:(fun _ -> true))
      in
      List.iter
        (fun drow ->
          let d = get_i drow.(1) in
          let news =
            where db "NEW_ORDER" "NO_D_ID" (vi d) (fun r -> get_i r.(1) = d)
          in
          match news with
          | [] -> ()
          | first :: _ ->
              (* index/scan order is ascending, so the head is the oldest
                 undelivered order of the district. *)
              let o_id = get_i first.(2) in
              (match Database.delete db "NEW_ORDER" [ vi w_id; vi d; vi o_id ] with
              | Ok _ -> ()
              | Error e -> raise (Abort e));
              let order = find db "ORDERS" [ vi w_id; vi d; vi o_id ] in
              let c = get_i order.(3) in
              upd db "ORDERS" [ vi w_id; vi d; vi o_id ] (fun r ->
                  r.(5) <- vi carrier;
                  r);
              let lines =
                where db "ORDER_LINE" "OL_D_ID" (vi d) (fun r ->
                    get_i r.(1) = d && get_i r.(2) = o_id)
              in
              let amount =
                List.fold_left (fun a r -> a + get_i r.(6)) 0 lines
              in
              List.iter
                (fun r ->
                  let n = get_i r.(3) in
                  upd db "ORDER_LINE" [ vi w_id; vi d; vi o_id; vi n ] (fun r ->
                      r.(7) <- Value.Bool true;
                      r))
                lines;
              upd db "CUSTOMER" [ vi w_id; vi d; vi c ] (fun r ->
                  r.(4) <- vi (get_i r.(4) + amount);
                  r.(7) <- vi (get_i r.(7) + 1);
                  r);
              incr delivered)
        districts;
      Ok [ [| vi !delivered |] ]
  | _ -> Error "delivery: bad parameters"

(* stock_level d threshold *)
let proc_stock_level db params =
  match params with
  | [ Value.Int d; Value.Int threshold ] ->
      let district = find db "DISTRICT" [ vi w_id; vi d ] in
      let next_o = get_i district.(5) in
      let lines =
        where db "ORDER_LINE" "OL_D_ID" (vi d) (fun r ->
            get_i r.(1) = d && get_i r.(2) >= next_o - 20)
      in
      let items = List.sort_uniq compare (List.map (fun r -> get_i r.(4)) lines) in
      let low =
        List.filter
          (fun i ->
            let s = find db "STOCK" [ vi w_id; vi i ] in
            get_i s.(2) < threshold)
          items
      in
      Ok [ [| vi (List.length low) |] ]
  | _ -> Error "stock_level: bad parameters"

let wrap proc db params =
  try proc db params with
  | Abort m -> Error m
  | Invalid_argument m -> Error m
  | Sim.Invariant.Violation { detail; _ } -> Error detail

let registry ?scale:_ () =
  Shadowdb.Txn.registry
    [
      ("new_order", wrap proc_new_order);
      ("payment", wrap proc_payment);
      ("order_status", wrap proc_order_status);
      ("delivery", wrap proc_delivery);
      ("stock_level", wrap proc_stock_level);
    ]

(* NURand(A, x, y) per the TPC-C spec, with a fixed C constant. *)
let nurand rng a x y =
  let c = 123 land a in
  let r1 = Sim.Prng.int rng (a + 1) in
  let r2 = x + Sim.Prng.int rng (y - x + 1) in
  (((r1 lor r2) + c) mod (y - x + 1)) + x

let make_txn ?(scale = small_scale) rng ~h_id =
  let d = 1 + Sim.Prng.int rng scale.districts in
  let c = nurand rng 1023 1 scale.customers_per_district in
  let roll = Sim.Prng.int rng 100 in
  if roll < 45 then begin
    (* New-Order: 5–15 lines; 1% carry an invalid item (rollback rule). *)
    let n_lines = 5 + Sim.Prng.int rng 11 in
    let bad = Sim.Prng.int rng 100 = 0 in
    let items =
      List.concat
        (List.init n_lines (fun i ->
             let item =
               if bad && i = n_lines - 1 then scale.items + 999_999
               else nurand rng 8191 1 scale.items
             in
             [ vi item; vi (1 + Sim.Prng.int rng 10) ]))
    in
    ("new_order", vi d :: vi c :: items)
  end
  else if roll < 88 then
    ("payment", [ vi d; vi c; vi (1 + Sim.Prng.int rng 5000); vi h_id ])
  else if roll < 92 then ("order_status", [ vi d; vi c ])
  else if roll < 96 then ("delivery", [ vi (1 + Sim.Prng.int rng 10) ])
  else ("stock_level", [ vi d; vi (10 + Sim.Prng.int rng 11) ])

let row_counts db =
  List.map (fun t -> (t, Database.row_count db t)) (Database.tables db)

(* Consistency conditions *)

let scan_all db table = ok_exn (Database.scan db table ~pred:(fun _ -> true))

let consistency_1 db =
  let w = find db "WAREHOUSE" [ vi w_id ] in
  let d_sum =
    List.fold_left (fun a r -> a + get_i r.(4)) 0 (scan_all db "DISTRICT")
  in
  if get_i w.(3) = d_sum then Ok ()
  else
    Error (Printf.sprintf "W_YTD %d <> sum(D_YTD) %d" (get_i w.(3)) d_sum)

let for_each_district db f =
  let districts = scan_all db "DISTRICT" in
  List.fold_left
    (fun acc drow ->
      match acc with Error _ -> acc | Ok () -> f (get_i drow.(1)) drow)
    (Ok ()) districts

let consistency_2 db =
  for_each_district db (fun d drow ->
      let next = get_i drow.(5) in
      let orders =
        scan_all db "ORDERS" |> List.filter (fun r -> get_i r.(1) = d)
      in
      let max_o =
        List.fold_left (fun a r -> max a (get_i r.(2))) 0 orders
      in
      if max_o = next - 1 then Ok ()
      else
        Error
          (Printf.sprintf "district %d: max(O_ID)=%d, D_NEXT_O_ID-1=%d" d
             max_o (next - 1)))

let consistency_3 db =
  for_each_district db (fun d _ ->
      let news =
        scan_all db "NEW_ORDER" |> List.filter (fun r -> get_i r.(1) = d)
      in
      match news with
      | [] -> Ok ()
      | _ ->
          let ids = List.map (fun r -> get_i r.(2)) news in
          let mn = List.fold_left min max_int ids in
          let mx = List.fold_left max min_int ids in
          if mx - mn + 1 = List.length news then Ok ()
          else
            Error
              (Printf.sprintf "district %d: NEW_ORDER ids not contiguous" d))

let consistency_4 db =
  for_each_district db (fun d _ ->
      let orders =
        scan_all db "ORDERS" |> List.filter (fun r -> get_i r.(1) = d)
      in
      let sum_cnt = List.fold_left (fun a r -> a + get_i r.(4)) 0 orders in
      let lines =
        scan_all db "ORDER_LINE" |> List.filter (fun r -> get_i r.(1) = d)
      in
      if sum_cnt = List.length lines then Ok ()
      else
        Error
          (Printf.sprintf "district %d: sum(O_OL_CNT)=%d, #ORDER_LINE=%d" d
             sum_cnt (List.length lines)))
