(* Zipf-distributed key sampler, YCSB-style.

   Precomputes the generalized harmonic numbers once so each draw is
   O(1) CDF inversion (Gray et al., "Quickly Generating Billion-Record
   Synthetic Databases"). [sample] is a pure function of the uniform
   input, so callers that need retry-determinism can derive [u] from a
   hash of (client, seq) instead of a stateful generator. *)

type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
}

let zeta n theta =
  let z = ref 0.0 in
  for i = 1 to n do
    z := !z +. (1.0 /. (float_of_int i ** theta))
  done;
  !z

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n <= 0";
  if theta < 0.0 || theta >= 1.0 then
    invalid_arg "Zipf.create: theta must be in [0, 1)";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { n; theta; alpha; zetan; eta }

let sample t ~u =
  let u = if u < 0.0 then 0.0 else if u >= 1.0 then Float.pred 1.0 else u in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. (0.5 ** t.theta) then 1
  else
    let k =
      int_of_float
        (float_of_int t.n *. (((t.eta *. u) -. t.eta +. 1.0) ** t.alpha))
    in
    if k >= t.n then t.n - 1 else if k < 0 then 0 else k

let sample_rng t rng = sample t ~u:(Sim.Prng.float rng)

(* Deterministic per-(client, seq) draw: the same submission always
   picks the same key, so a timeout resend is byte-identical. *)
let sample_id t ~client ~seq =
  let h = Shadowdb.Shard.hash_key { table = "zipf"; id = (client * 1_000_003) + seq } in
  let u = float_of_int (h land 0xFFFFFFF) /. float_of_int 0x10000000 in
  sample t ~u
