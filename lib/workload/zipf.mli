(** Zipf-distributed key sampler (YCSB-style, O(1) per draw).

    Skewed key access for honest hot-shard benchmarks: with skew
    [theta] the i-th most popular key has probability proportional to
    [1/i^theta]. [theta = 0] degenerates to uniform; YCSB's default is
    0.99. Construction is O(n) (harmonic-number precomputation); each
    sample is constant time. *)

type t

val create : n:int -> theta:float -> t
(** Sampler over keys [0 .. n-1]. [theta] must be in [0, 1). *)

val zeta : int -> float -> float
(** Generalized harmonic number [H_{n,theta}] (exposed for tests). *)

val sample : t -> u:float -> int
(** Pure CDF inversion of a uniform [u] in [0, 1): key rank, hottest
    first. Out-of-range [u] is clamped. *)

val sample_rng : t -> Sim.Prng.t -> int
(** Draw using the simulator's deterministic generator. *)

val sample_id : t -> client:int -> seq:int -> int
(** Deterministic draw keyed by [(client, seq)] — a retried submission
    re-picks the identical key. *)
