(* Tests for the spec-level static analysis (lib/analysis): every pass
   fires exactly its promised codes on the defective fixtures, stays
   silent on the real specifications, and the coverage pass's dead-header
   verdicts are sound under schedule exploration — a header it flags as
   unproducible is never delivered across a thousand random schedules. *)

module Message = Loe.Message
module Cls = Loe.Cls
module Engine = Sim.Engine

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  n > 0 && go 0

(* ---------- fixtures: each pass fires, and fires exactly ---------- *)

let test_fixtures_fire () =
  List.iter
    (fun (f : Analysis.Fixtures.t) ->
      let fired =
        List.sort_uniq String.compare
          (List.map (fun (d : Analysis.Diag.t) -> d.Analysis.Diag.code)
             (f.Analysis.Fixtures.run ()))
      in
      Alcotest.(check (list string))
        (f.Analysis.Fixtures.name ^ " fires exactly its promised codes")
        (List.sort_uniq String.compare f.Analysis.Fixtures.expect)
        fired)
    Analysis.Fixtures.all

(* ---------- real targets: zero findings ---------- *)

let test_real_targets_clean () =
  let reports = Analysis.Lint.run_all () in
  List.iter
    (fun (r : Analysis.Lint.report) ->
      Alcotest.(check int)
        (r.Analysis.Lint.target ^ " is clean")
        0
        (List.length r.Analysis.Lint.findings))
    reports

(* ---------- pass-level unit tests on synthetic inputs ---------- *)

let codes ds =
  List.sort_uniq String.compare
    (List.map (fun (d : Analysis.Diag.t) -> d.Analysis.Diag.code) ds)

let test_coverage_directions () =
  let open Analysis.Coverage in
  let decls =
    [
      { hdr = "in"; dir = Client_in };
      { hdr = "handled-never-sent"; dir = Internal };
      { hdr = "sent-never-handled"; dir = Internal };
      { hdr = "tick"; dir = Timer };
      { hdr = "note"; dir = External_out };
    ]
  in
  let ds =
    pass ~target:"unit"
      ~recognized:[ "in"; "handled-never-sent"; "tick"; "stray" ]
      ~produced:[ "sent-never-handled" ]
      decls
  in
  Alcotest.(check (list string))
    "coverage verdicts"
    [ "dead-handler"; "dead-letter"; "never-emitted"; "undeclared-header" ]
    (codes ds)

let test_send_graph_reachability () =
  let r =
    {
      Analysis.Exec.produced = [ "x"; "y" ];
      edges = [ (0, "x", 1); (1, "y", 99) ];
      external_out = [ ("y", 99) ];
      steps = 2;
      quiesced = true;
    }
  in
  let ds =
    Analysis.Send_graph.pass ~target:"unit" ~inject_locs:[ 0 ]
      ~observations:[ 99; 100 ] r
  in
  Alcotest.(check (list string))
    "only the unfed observation point is flagged"
    [ "unreachable-observation" ] (codes ds);
  Alcotest.(check int) "one finding" 1 (List.length ds)

let test_shape_firing () =
  let h = Message.declare "h" and g = Message.declare "g" in
  let c =
    Cls.( ||| )
      (Cls.map (fun () -> 1) (Cls.base h))
      (Cls.map (fun () -> 2) (Cls.base g))
  in
  (match Analysis.Shape.firing c with
  | Analysis.Shape.On hs ->
      Alcotest.(check (list string)) "par fires on both" [ "g"; "h" ]
        (List.sort String.compare hs)
  | Analysis.Shape.Always -> Alcotest.fail "par of bases is not Always");
  match Analysis.Shape.firing (Cls.state "S" ~init:(fun _ -> 0) ~upd:(fun _ v _ -> v) (Cls.map (fun () -> 1) (Cls.base h))) with
  | Analysis.Shape.Always -> ()
  | Analysis.Shape.On _ -> Alcotest.fail "State is single-valued at every event"

(* ---------- Cls.pp (satellite) ---------- *)

let test_cls_pp () =
  let h = Message.declare "hx" in
  let st =
    Cls.state "S" ~init:(fun _ -> 0) ~upd:(fun _ () s -> s + 1) (Cls.base h)
  in
  let c = Cls.o2 (fun _ () s -> [ s ]) (Cls.base h) st in
  let s = Cls.to_string c in
  let expected_head =
    Printf.sprintf "%s [%d]" (Cls.name_of c) (Cls.size c)
  in
  Alcotest.(check bool)
    "root line carries the total size" true
    (contains ~sub:expected_head s);
  Alcotest.(check bool) "nested state printed" true (contains ~sub:"state:S" s);
  Alcotest.(check bool) "base printed" true (contains ~sub:"base:hx" s);
  Alcotest.(check string) "delegate child naming" "scout-child"
    (Cls.child_name "scout")

(* ---------- structured invariants (satellite) ---------- *)

let test_invariant_helpers () =
  (match Sim.Invariant.head ~layer:"t" ~what:"xs" [ 7 ] with
  | 7 -> ()
  | _ -> Alcotest.fail "head of non-empty");
  (match Sim.Invariant.head ~layer:"t" ~what:"xs" [] with
  | exception Sim.Invariant.Violation { layer = "t"; _ } -> ()
  | _ -> Alcotest.fail "head of empty must raise a structured violation");
  match Sim.Invariant.assoc ~layer:"t" ~what:"k" 1 [ (2, "b") ] with
  | exception Sim.Invariant.Violation { layer = "t"; detail } ->
      Alcotest.(check bool) "detail names the site" true
        (contains ~sub:"k" detail)
  | _ -> Alcotest.fail "assoc miss must raise a structured violation"

(* ---------- impl passes: call graph on an in-test source ---------- *)

(* Two tiny "files" in one directory: a module alias crossing between
   them, a nested module, an external blocking call, and a closure
   stored in a record field — the resolution features the impl passes
   lean on. *)
let cg_util_src = "let double x = x + x\n"

let cg_main_src =
  {|
module F = Util

let helper x = F.double x

module Inner = struct
  let deep y = helper y
end

let entry fd =
  let b = Inner.deep 1 in
  ignore (Unix.read fd (Bytes.create b) 0 b);
  { on_event = (fun e -> helper e) }
|}

let test_callgraph_small () =
  let parse path src =
    match Analysis.Ast_load.parse_string ~path src with
    | Ok s -> s
    | Error _ -> Alcotest.fail ("test source does not parse: " ^ path)
  in
  let g =
    Analysis.Callgraph.build ~lock_helpers:[]
      [ parse "test/util.ml" cg_util_src; parse "test/cg_main.ml" cg_main_src ]
  in
  let has name = Analysis.Callgraph.find_def g name <> None in
  Alcotest.(check bool) "file-level def" true (has "Test.Cg_main.entry");
  Alcotest.(check bool) "nested-module def" true (has "Test.Cg_main.Inner.deep");
  Alcotest.(check bool)
    "record-closure pseudo-def" true
    (has "Test.Cg_main.entry.on_event");
  Alcotest.(check (list string))
    "field impls registered"
    [ "Test.Cg_main.entry.on_event" ]
    (Analysis.Callgraph.impls g "on_event");
  let reaches from target = Analysis.Callgraph.reaches g ~from target in
  Alcotest.(check bool)
    "entry reaches the external blocking call" true
    (reaches "Test.Cg_main.entry" "Unix.read");
  Alcotest.(check bool)
    "alias resolves across files: entry reaches Util.double" true
    (reaches "Test.Cg_main.entry" "Test.Util.double");
  Alcotest.(check bool)
    "closure body attributed to the pseudo-def" true
    (reaches "Test.Cg_main.entry.on_event" "Test.Util.double");
  Alcotest.(check bool)
    "helper does not reach Unix.read" false
    (reaches "Test.Cg_main.helper" "Unix.read");
  let r = Analysis.Callgraph.reach g ~roots:[ "Test.Cg_main.entry" ] in
  Alcotest.(check bool)
    "chain names the path" true
    (contains ~sub:"Test.Cg_main.entry" (Analysis.Callgraph.chain r "Unix.read"))

(* ---------- impl fixtures: each defective source is rejected ---------- *)

let test_impl_fixtures_fire () =
  List.iter
    (fun (f : Analysis.Fixtures.t) ->
      let fired =
        codes (f.Analysis.Fixtures.run ())
      in
      Alcotest.(check (list string))
        (f.Analysis.Fixtures.name ^ " fires exactly its promised codes")
        (List.sort_uniq String.compare f.Analysis.Fixtures.expect)
        fired)
    Analysis.Impl_fixtures.all

(* ---------- impl passes over the real sources: clean ---------- *)

(* The dune sandbox may or may not expose the repo sources; probe for
   them (tests execute under _build/default/test) and skip gracefully
   when absent — the CLI + CI `impl-lint` job cover the from-repo-root
   invocation. *)
let test_impl_real_clean () =
  let candidates =
    [ "lib"; "../lib"; "../../lib"; "../../../lib"; "../../../../lib" ]
  in
  match
    List.find_opt
      (fun d -> Sys.file_exists (Filename.concat d "runtime/loop.ml"))
      candidates
  with
  | None -> print_endline "impl-real-clean: sources not visible, skipping"
  | Some d ->
      let reports = Analysis.Impl.run ~src_dirs:[ d ] () in
      List.iter
        (fun (r : Analysis.Lint.report) ->
          List.iter
            (fun (diag : Analysis.Diag.t) ->
              print_endline (Format.asprintf "%a" Analysis.Diag.pp diag))
            r.Analysis.Lint.findings;
          Alcotest.(check int)
            (r.Analysis.Lint.target ^ " impl target is clean")
            0
            (List.length r.Analysis.Lint.findings))
        reports;
      Alcotest.(check bool)
        "all four impl targets ran" true
        (List.length reports >= 4)

(* ---------- sweep v2 precision property ---------- *)

(* For every banned pattern: occurrences confined to a comment and a
   string literal are never flagged, while the same pattern as real code
   fires exactly its one code — the two false classes of the textual v1. *)
let sweep_banned =
  [
    ("failwith", "failwith");
    ("invalid_arg", "invalid-arg");
    ("List.hd", "list-hd");
    ("List.assoc", "list-assoc");
    ("Option.get", "option-get");
    ("Obj.magic", "obj-magic");
  ]

let prop_sweep_precision =
  QCheck.Test.make ~count:200
    ~name:"sweep v2 flags code, never comments or string literals"
    QCheck.(
      make
        Gen.(
          pair
            (int_bound (List.length sweep_banned - 1))
            (map (Printf.sprintf "w%d") (int_bound 99999))))
    (fun (i, filler) ->
      let pat, code = List.nth sweep_banned i in
      let scan name src =
        match Analysis.Ast_load.parse_string ~path:(name ^ ".ml") src with
        | Ok s ->
            codes
              (Analysis.Sweep.scan_structure ~path:s.Analysis.Ast_load.src_path
                 s.Analysis.Ast_load.src_str)
        | Error _ -> [ "parse-error" ]
      in
      let quiet =
        Printf.sprintf "(* %s %s *)\nlet s = \"%s %s\"\nlet use () = s\n"
          filler pat pat filler
      in
      let loud = Printf.sprintf "let f x = %s x\n" pat in
      scan "quiet" quiet = [] && scan "loud" loud = [ code ])

(* ---------- soundness: flagged-dead headers never appear ---------- *)

(* The dead-handler fixture's [ghost] header is flagged by coverage as
   unproducible from bounded FIFO execution. Property: across 1000
   random schedules of the same spec under the engine's scheduler hook
   (arbitrary interleavings of concurrent client injections and member
   traffic), no member ever receives [ghost] — the static verdict has no
   false positives under reordering. *)
let prop_dead_header_sound =
  QCheck.Test.make ~count:1000
    ~name:"coverage dead-handler verdict sound across 1k random schedules"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let spec, go, ghost = Analysis.Fixtures.dead_handler_spec () in
      let ghost_hdr = Message.hdr_name ghost
      and go_hdr = Message.hdr_name go in
      let world : Message.t Engine.t = Engine.create ~seed () in
      Check.Sched.install (Check.Sched.random seed) world;
      let members = List.length spec.Loe.Spec.locs in
      let delivered = ref [] in
      let ids =
        List.map
          (fun l ->
            Engine.spawn world ~name:(Printf.sprintf "m%d" l) (fun () ->
                let machine = Gpm.Opt.compile l spec.Loe.Spec.main in
                fun ctx -> function
                  | Engine.Init -> ()
                  | Engine.Recv { msg; _ } ->
                      delivered := msg.Message.hdr :: !delivered;
                      List.iter
                        (fun (d : Message.directed) ->
                          if d.Message.delay <= 0.0 && d.Message.dst < members
                          then Engine.send ctx d.Message.dst d.Message.msg)
                        (Gpm.Opt.step machine msg)
                  | Engine.Timer _ -> ()))
          spec.Loe.Spec.locs
      in
      let member_arr = Array.of_list ids in
      let _client =
        Engine.spawn world ~name:"client" (fun () ->
            fun ctx -> function
              | Engine.Init ->
                  (* Concurrent injections at every member: real choice
                     points for the scheduler hook. *)
                  Array.iter
                    (fun m -> Engine.send ctx m (Message.make go ()))
                    member_arr
              | _ -> ())
      in
      Engine.run ~max_events:10_000 world;
      (not (List.mem ghost_hdr !delivered)) && List.mem go_hdr !delivered)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "analysis"
    [
      ( "fixtures",
        [ Alcotest.test_case "each pass fires exactly" `Quick test_fixtures_fire ] );
      ( "real-targets",
        [ Alcotest.test_case "all clean" `Quick test_real_targets_clean ] );
      ( "passes",
        [
          Alcotest.test_case "coverage directions" `Quick
            test_coverage_directions;
          Alcotest.test_case "send-graph reachability" `Quick
            test_send_graph_reachability;
          Alcotest.test_case "shape firing" `Quick test_shape_firing;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "Cls.pp structure" `Quick test_cls_pp;
          Alcotest.test_case "invariant helpers" `Quick test_invariant_helpers;
        ] );
      ( "impl",
        [
          Alcotest.test_case "call graph on in-test sources" `Quick
            test_callgraph_small;
          Alcotest.test_case "defective impl fixtures rejected" `Quick
            test_impl_fixtures_fire;
          Alcotest.test_case "real sources clean" `Quick test_impl_real_clean;
        ] );
      ("soundness", [ qt prop_dead_header_sound; qt prop_sweep_precision ]);
    ]
