(* Tests for the baseline replicated databases: standalone execution,
   eager table-lock replication (H2-repl-like), semisync replication
   (MySQL-like), lock-timeout aborts, and statement-round-trip modeling. *)

module Engine = Sim.Engine
module B = Baselines.Server
module Value = Storage.Value

let rows = 100

let make_deposit ~client ~seq =
  let account = abs (Hashtbl.hash (client, seq)) mod rows in
  Workload.Bank.deposit ~account ~amount:1

let run ?backend ?exec_factor ?lock_timeout ?stmt_delay ?(same_account = false)
    mode ~n_clients ~count () =
  let world : B.wire Engine.t = Engine.create ~seed:31 () in
  let cluster =
    B.spawn ?backend ?exec_factor ?lock_timeout ?stmt_delay ~world:(Runtime.Of_sim.of_engine world)
      ~registry:Workload.Bank.registry
      ~setup:(fun db -> Workload.Bank.setup ~rows db)
      mode
  in
  let latencies = Stats.Sample.create () in
  let completed =
    B.spawn_clients ~world:(Runtime.Of_sim.of_engine world) ~cluster ~n:n_clients ~count
      ~make_txn:(fun ~client ~seq ->
        if same_account then Workload.Bank.deposit ~account:0 ~amount:1
        else make_deposit ~client ~seq)
      ~on_commit:(fun _ l -> Stats.Sample.add latencies l)
      ()
  in
  Engine.run ~until:600.0 ~max_events:50_000_000 world;
  (cluster, completed (), latencies)

let test_standalone_completes () =
  let cluster, completed, _ = run B.Standalone ~n_clients:3 ~count:50 () in
  Alcotest.(check int) "clients done" 3 completed;
  Alcotest.(check int) "commits" 150 (cluster.B.commits ());
  Alcotest.(check int) "no aborts" 0 (cluster.B.aborts ())

let test_lockstep_completes () =
  let cluster, completed, _ = run B.Lockstep_repl ~n_clients:3 ~count:40 () in
  Alcotest.(check int) "clients done" 3 completed;
  Alcotest.(check int) "commits" 120 (cluster.B.commits ())

let test_semisync_completes () =
  let cluster, completed, _ =
    run (B.Semisync_repl Storage.Lock.Row_level) ~n_clients:3 ~count:40 ()
  in
  Alcotest.(check int) "clients done" 3 completed;
  Alcotest.(check int) "commits" 120 (cluster.B.commits ())

let test_lockstep_serializes_table () =
  (* Table-level locks held across the replication round trip: the lock
     hold includes the backup's execution, so throughput is far below the
     standalone CPU bound. *)
  let _, _, lat_lockstep = run B.Lockstep_repl ~n_clients:4 ~count:40 () in
  let _, _, lat_standalone = run B.Standalone ~n_clients:4 ~count:40 () in
  Alcotest.(check bool) "lockstep latency ≫ standalone" true
    (Stats.Sample.mean lat_lockstep > 2.0 *. Stats.Sample.mean lat_standalone)

let test_lock_timeout_aborts () =
  (* A very short lock budget under heavy same-row contention must produce
     timeout aborts, and retries must still complete every transaction. *)
  let cluster, completed, _ =
    run ~lock_timeout:0.0002 ~same_account:true B.Lockstep_repl ~n_clients:8
      ~count:20 ()
  in
  Alcotest.(check int) "all complete despite aborts" 8 completed;
  Alcotest.(check int) "every txn committed exactly once" 160
    (cluster.B.commits ());
  Alcotest.(check bool) "aborts happened" true (cluster.B.aborts () > 0)

let test_row_locks_allow_parallelism () =
  (* Under row-level locks, different accounts don't contend: no aborts
     even with a tiny lock budget. *)
  let cluster, completed, _ =
    run ~lock_timeout:0.0002
      (B.Semisync_repl Storage.Lock.Row_level)
      ~n_clients:4 ~count:30 ()
  in
  Alcotest.(check int) "done" 4 completed;
  Alcotest.(check int) "no aborts on distinct rows" 0 (cluster.B.aborts ())

let test_stmt_delay_extends_latency () =
  let _, _, fast = run B.Standalone ~n_clients:1 ~count:30 () in
  let _, _, slow =
    run ~stmt_delay:(fun _ -> 0.005) B.Standalone ~n_clients:1 ~count:30 ()
  in
  Alcotest.(check bool) "≈5ms of round trips visible in latency" true
    (Stats.Sample.mean slow -. Stats.Sample.mean fast > 0.004)

let test_deterministic_abort_not_retried () =
  (* A transfer with insufficient funds aborts deterministically; the
     client must move on (not spin). *)
  let world : B.wire Engine.t = Engine.create ~seed:33 () in
  let cluster =
    B.spawn ~world:(Runtime.Of_sim.of_engine world) ~registry:Workload.Bank.registry
      ~setup:(fun db -> Workload.Bank.setup ~rows db)
      B.Standalone
  in
  let completed =
    B.spawn_clients ~world:(Runtime.Of_sim.of_engine world) ~cluster ~n:1 ~count:3
      ~make_txn:(fun ~client:_ ~seq:_ ->
        Workload.Bank.transfer ~src:0 ~dst:1 ~amount:1_000_000)
      ()
  in
  Engine.run ~until:60.0 world;
  Alcotest.(check int) "client finished" 1 (completed ());
  Alcotest.(check int) "no commits" 0 (cluster.B.commits ());
  Alcotest.(check int) "three aborts" 3 (cluster.B.aborts ())

let () =
  Alcotest.run "baselines"
    [
      ( "modes",
        [
          Alcotest.test_case "standalone" `Quick test_standalone_completes;
          Alcotest.test_case "lockstep" `Quick test_lockstep_completes;
          Alcotest.test_case "semisync" `Quick test_semisync_completes;
        ] );
      ( "locking",
        [
          Alcotest.test_case "table serialization" `Quick
            test_lockstep_serializes_table;
          Alcotest.test_case "timeout aborts" `Quick test_lock_timeout_aborts;
          Alcotest.test_case "row parallelism" `Quick
            test_row_locks_allow_parallelism;
        ] );
      ( "modeling",
        [
          Alcotest.test_case "statement delays" `Quick
            test_stmt_delay_extends_latency;
          Alcotest.test_case "deterministic abort" `Quick
            test_deterministic_abort_not_retried;
        ] );
    ]
