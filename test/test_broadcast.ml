(* Tests for the total-order broadcast service on the simulator: total
   order, no duplication, no creation, batching, consensus-module
   switching, and leader-crash failover. *)

module Engine = Sim.Engine
module Tob = Broadcast.Tob
module Shell_paxos = Broadcast.Shell.Make (Consensus.Paxos)
module Shell_tt = Broadcast.Shell.Make (Consensus.Twothird_multi)

type 'svc wire = Svc of 'svc | Note of Tob.deliver

(* Generic driver: spawns an order observer, the service (via
   [spawn_service], which closes over the world), and [n_clients]
   closed-loop clients that broadcast [msgs_per_client] messages each,
   resending on timeout with contact rotation. Returns (latencies,
   #clients completed, observer's delivery stream). *)
let run_tob ~world ~spawn_service ~mk_broadcast ~n_clients ~msgs_per_client
    ~crash_first_member_at () =
  let latencies = Stats.Sample.create () in
  let client_ids = ref [] in
  let members = ref [] in
  let completed = ref 0 in
  let order = ref [] in
  let observer =
    Engine.spawn world ~name:"order-observer" (fun () _ctx -> function
      | Engine.Recv { msg = Note d; _ } -> order := d :: !order
      | Engine.Recv _ | Engine.Init | Engine.Timer _ -> ())
  in
  let mk_client () =
    let locref = ref (-1) in
    let id =
      Engine.spawn world ~name:"client" (fun () ->
          let next_id = ref 0 in
          let sent_at = ref 0.0 in
          let attempt = ref 0 in
          let timer = ref (-1) in
          let send ctx =
            let ms = !members in
            let contact = List.nth ms (!attempt mod List.length ms) in
            incr attempt;
            sent_at := Engine.time ctx;
            Engine.send ctx contact
              (Svc
                 (mk_broadcast
                    { Tob.origin = !locref; id = !next_id; payload = "m" }));
            timer := Engine.set_timer ctx 3.0 "retry"
          in
          fun ctx -> function
            | Engine.Init -> send ctx
            | Engine.Recv { msg = Note d; _ } ->
                if
                  d.Tob.entry.Tob.origin = !locref
                  && d.Tob.entry.Tob.id = !next_id
                then begin
                  Engine.cancel_timer ctx !timer;
                  Stats.Sample.add latencies (Engine.time ctx -. !sent_at);
                  incr next_id;
                  if !next_id < msgs_per_client then send ctx
                  else incr completed
                end
            | Engine.Recv _ -> ()
            | Engine.Timer _ -> if !next_id < msgs_per_client then send ctx)
    in
    locref := id;
    id
  in
  let svc = spawn_service ~subscribers:(fun () -> observer :: !client_ids) in
  members := svc;
  client_ids := List.init n_clients (fun _ -> mk_client ());
  (match crash_first_member_at with
  | Some t -> Engine.at world t (fun () -> Engine.crash world (List.hd svc))
  | None -> ());
  Engine.run ~until:300.0 ~max_events:5_000_000 world;
  (latencies, !completed, List.rev !order)

let run_paxos ?crash_first_member_at ~n_clients ~msgs_per_client () =
  let world = Engine.create ~seed:7 () in
  run_tob ~world
    ~spawn_service:(fun ~subscribers ->
      Shell_paxos.spawn ~world:(Runtime.Of_sim.of_engine world)
        ~inj:(fun m -> Svc m)
        ~prj:(function Svc m -> Some m | Note _ -> None)
        ~inj_notify:(fun d -> Note d)
        ~n:3 ~subscribers ())
    ~mk_broadcast:(fun e -> Shell_paxos.T.Broadcast e)
    ~n_clients ~msgs_per_client ~crash_first_member_at ()

let run_twothird ~n_clients ~msgs_per_client () =
  let world = Engine.create ~seed:11 () in
  run_tob ~world
    ~spawn_service:(fun ~subscribers ->
      Shell_tt.spawn ~world:(Runtime.Of_sim.of_engine world)
        ~inj:(fun m -> Svc m)
        ~prj:(function Svc m -> Some m | Note _ -> None)
        ~inj_notify:(fun d -> Note d)
        ~n:4 ~subscribers ())
    ~mk_broadcast:(fun e -> Shell_tt.T.Broadcast e)
    ~n_clients ~msgs_per_client ~crash_first_member_at:None ()

let check_total_order_stream order =
  (* The observer receives one notification per member per delivery: a
     seqno must always carry the same entry. *)
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (d : Tob.deliver) ->
      match Hashtbl.find_opt tbl d.Tob.seqno with
      | None -> Hashtbl.add tbl d.Tob.seqno d.Tob.entry
      | Some e ->
          Alcotest.(check bool)
            (Printf.sprintf "seqno %d consistent" d.Tob.seqno)
            true
            (e = d.Tob.entry))
    order

let distinct_entries order =
  List.length (List.sort_uniq compare (List.map (fun d -> d.Tob.entry) order))

let test_paxos_tob_basic () =
  let latencies, completed, order = run_paxos ~n_clients:2 ~msgs_per_client:10 () in
  Alcotest.(check int) "all clients completed" 2 completed;
  Alcotest.(check int) "20 distinct messages delivered" 20 (distinct_entries order);
  check_total_order_stream order;
  Alcotest.(check bool) "latency sane (>0, <1s)" true
    (Stats.Sample.mean latencies > 0.0 && Stats.Sample.mean latencies < 1.0)

let test_paxos_tob_many_clients_batching () =
  let _, completed, order = run_paxos ~n_clients:8 ~msgs_per_client:5 () in
  Alcotest.(check int) "all clients completed" 8 completed;
  check_total_order_stream order;
  Alcotest.(check int) "40 messages delivered" 40 (distinct_entries order)

let test_paxos_tob_leader_crash () =
  (* Crash the initial leader mid-run: the survivors take over (suspect
     timeout → re-scout) and clients complete via contact rotation. *)
  let _, completed, order =
    run_paxos ~crash_first_member_at:0.05 ~n_clients:2 ~msgs_per_client:6 ()
  in
  Alcotest.(check int) "all clients completed despite crash" 2 completed;
  check_total_order_stream order

let test_paxos_tob_partition_heal () =
  (* Partition the leader from both peers mid-run: progress stalls (no
     majority reachable from it), the survivors elect a new leader after
     the suspect timeout, and all client messages still get delivered. *)
  let world = Engine.create ~seed:13 () in
  let order = ref [] in
  let observer =
    Engine.spawn world ~name:"order-observer" (fun () _ctx -> function
      | Engine.Recv { msg = Note d; _ } -> order := d :: !order
      | Engine.Recv _ | Engine.Init | Engine.Timer _ -> ())
  in
  let latencies, completed, _ =
    run_tob ~world
      ~spawn_service:(fun ~subscribers ->
        let svc =
          Shell_paxos.spawn ~world:(Runtime.Of_sim.of_engine world)
            ~inj:(fun m -> Svc m)
            ~prj:(function Svc m -> Some m | Note _ -> None)
            ~inj_notify:(fun d -> Note d)
            ~n:3
            ~subscribers:(fun () -> observer :: subscribers ())
            ()
        in
        (match svc with
        | [ a; b; c ] ->
            Engine.at world 0.05 (fun () ->
                Engine.partition world a b;
                Engine.partition world a c);
            Engine.at world 2.0 (fun () ->
                Engine.heal world a b;
                Engine.heal world a c)
        | _ -> ());
        svc)
      ~mk_broadcast:(fun e -> Shell_paxos.T.Broadcast e)
      ~n_clients:2 ~msgs_per_client:8 ~crash_first_member_at:None ()
  in
  ignore latencies;
  Alcotest.(check int) "all clients completed through the partition" 2 completed;
  check_total_order_stream (List.rev !order)

let test_twothird_tob_basic () =
  let _, completed, order = run_twothird ~n_clients:3 ~msgs_per_client:5 () in
  Alcotest.(check int) "all clients completed" 3 completed;
  check_total_order_stream order;
  Alcotest.(check int) "15 messages delivered" 15 (distinct_entries order)

(* Pure-level TOB unit tests (no simulator). *)
module T = Tob.Make (Consensus.Paxos)

let test_tob_single_member_delivery () =
  let t = T.create ~batch_cap:10 ~self:0 ~members:[ 0 ] ~subscribers:[ 99 ] () in
  let t, _ = T.start t ~now:0.0 in
  (* With a single member, consensus completes synchronously via local
     short-circuiting: each broadcast is immediately delivered. *)
  let e i = { Tob.origin = 5; id = i; payload = "p" } in
  let t, acts1 = T.recv t ~now:0.1 ~src:5 (T.Broadcast (e 0)) in
  let notifies = List.filter (function T.Notify _ -> true | _ -> false) acts1 in
  Alcotest.(check int) "delivered to subscriber" 1 (List.length notifies);
  Alcotest.(check int) "seqno assigned" 1 (T.delivered t)

let test_tob_duplicate_suppression () =
  let t = T.create ~self:0 ~members:[ 0 ] ~subscribers:[ 99 ] () in
  let t, _ = T.start t ~now:0.0 in
  let e = { Tob.origin = 5; id = 7; payload = "p" } in
  let t, _ = T.recv t ~now:0.1 ~src:5 (T.Broadcast e) in
  let t, acts = T.recv t ~now:0.2 ~src:5 (T.Broadcast e) in
  let notifies = List.filter (function T.Notify _ -> true | _ -> false) acts in
  Alcotest.(check int) "duplicate not re-delivered" 0 (List.length notifies);
  Alcotest.(check int) "count unchanged" 1 (T.delivered t)

let test_tob_log_order () =
  let t = T.create ~self:0 ~members:[ 0 ] ~subscribers:[] () in
  let t, _ = T.start t ~now:0.0 in
  let t = ref t in
  for i = 0 to 4 do
    let t', _ =
      T.recv !t ~now:0.1 ~src:5
        (T.Broadcast { Tob.origin = 5; id = i; payload = string_of_int i })
    in
    t := t'
  done;
  Alcotest.(check (list string)) "log in submission order"
    [ "0"; "1"; "2"; "3"; "4" ]
    (List.map (fun e -> e.Tob.payload) (T.log !t))

(* Distinct consensus slots this member has open proposals for, read off
   the outgoing core messages. *)
let proposed_slots acts =
  List.sort_uniq compare
    (List.filter_map
       (function
         | T.Send (_, T.Core (Consensus.Paxos_msg.Propose { s; _ })) -> Some s
         | _ -> None)
       acts)

let test_tob_pipelining_window () =
  (* Three members, so proposals stay in flight (no local majority); batch
     cap 1 makes every entry its own batch. With window 2 a member opens
     two consensus slots before the first decision; with the default
     window it holds the second entry back. *)
  let feed window =
    let t =
      T.create ~batch_cap:1 ~window ~self:0 ~members:[ 0; 1; 2 ]
        ~subscribers:[ 99 ] ()
    in
    let t, _ = T.start t ~now:0.0 in
    let e i = { Tob.origin = 5; id = i; payload = "p" } in
    let acts = ref [] in
    let t = ref t in
    for i = 0 to 2 do
      let t', a = T.recv !t ~now:0.1 ~src:5 (T.Broadcast (e i)) in
      t := t';
      acts := !acts @ a
    done;
    proposed_slots !acts
  in
  Alcotest.(check (list int)) "window 1: one slot open" [ 0 ] (feed 1);
  Alcotest.(check (list int)) "window 2: two slots open" [ 0; 1 ] (feed 2);
  Alcotest.(check (list int)) "window 4: three slots open" [ 0; 1; 2 ] (feed 4)

let test_tob_pipelined_delivery_in_order () =
  (* Single member: consensus is synchronous, so a window of 4 exercises
     propose-deliver interleaving while every entry still comes out in
     submission order with dense seqnos. *)
  let t =
    T.create ~batch_cap:1 ~window:4 ~self:0 ~members:[ 0 ] ~subscribers:[ 99 ]
      ()
  in
  let t, _ = T.start t ~now:0.0 in
  let t = ref t in
  let seqnos = ref [] in
  for i = 0 to 5 do
    let t', acts =
      T.recv !t ~now:0.1 ~src:5
        (T.Broadcast { Tob.origin = 5; id = i; payload = string_of_int i })
    in
    t := t';
    List.iter
      (function
        | T.Notify (_, d) -> seqnos := d.Tob.seqno :: !seqnos
        | _ -> ())
      acts
  done;
  Alcotest.(check (list int)) "dense seqnos in submission order"
    [ 0; 1; 2; 3; 4; 5 ] (List.rev !seqnos);
  Alcotest.(check (list string)) "log in submission order"
    [ "0"; "1"; "2"; "3"; "4"; "5" ]
    (List.map (fun e -> e.Tob.payload) (T.log !t))

let () =
  Alcotest.run "broadcast"
    [
      ( "tob-pure",
        [
          Alcotest.test_case "single-member delivery" `Quick
            test_tob_single_member_delivery;
          Alcotest.test_case "duplicate suppression" `Quick
            test_tob_duplicate_suppression;
          Alcotest.test_case "log order" `Quick test_tob_log_order;
          Alcotest.test_case "pipelining window opens slots" `Quick
            test_tob_pipelining_window;
          Alcotest.test_case "pipelined delivery stays in order" `Quick
            test_tob_pipelined_delivery_in_order;
        ] );
      ( "tob-sim",
        [
          Alcotest.test_case "paxos basic" `Quick test_paxos_tob_basic;
          Alcotest.test_case "paxos batching" `Quick
            test_paxos_tob_many_clients_batching;
          Alcotest.test_case "paxos leader crash" `Quick
            test_paxos_tob_leader_crash;
          Alcotest.test_case "paxos partition + heal" `Quick
            test_paxos_tob_partition_heal;
          Alcotest.test_case "twothird basic" `Quick test_twothird_tob_basic;
        ] );
    ]
