(* Tests for the schedule-exploring model checker: fault DSL round-trips,
   strategy recording/replay, exploration of the real protocols (which
   must stay violation-free), the deliberately broken broadcast double
   (which must yield a captured, replayable, shrunk counterexample), and
   determinism of exploration per seed. *)

module Sched = Check.Sched
module Fault = Check.Fault
module Trace = Check.Trace
module Scenario = Check.Scenario
module Scenarios = Check.Scenarios
module Explore = Check.Explore

(* ---- fault DSL ------------------------------------------------------- *)

let test_fault_roundtrip () =
  let plan =
    [
      { Fault.at_depth = 2; op = Fault.Partition (0, 1) };
      { Fault.at_depth = 3; op = Fault.Crash 2 };
      { Fault.at_depth = 6; op = Fault.Heal (0, 1) };
      { Fault.at_depth = 8; op = Fault.Restart 2 };
    ]
  in
  let s = Fault.to_string plan in
  Alcotest.(check string)
    "rendering" "part:0:1@2,crash:2@3,heal:0:1@6,restart:2@8" s;
  match Fault.parse s with
  | Ok plan' -> Alcotest.(check bool) "round-trip" true (plan = plan')
  | Error e -> Alcotest.fail e

let test_fault_parse_errors () =
  let bad s =
    match Fault.parse s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "missing depth" true (bad "crash:0");
  Alcotest.(check bool) "bad op" true (bad "explode:0@3");
  Alcotest.(check bool) "bad node" true (bad "crash:x@3");
  Alcotest.(check bool) "empty ok" true (Fault.parse "" = Ok [])

let test_fault_random_crash_stop () =
  (* Random plans model crash-stop failures: never an amnesia restart,
     and every partition is eventually healed. *)
  for seed = 0 to 199 do
    let plan =
      Fault.random (Sim.Prng.create seed) ~nodes:3 ~max_depth:20
    in
    List.iter
      (fun s ->
        match s.Fault.op with
        | Fault.Restart _ -> Alcotest.fail "random plan contains a restart"
        | Fault.Partition (a, b) ->
            let healed =
              List.exists
                (fun s' ->
                  s'.Fault.op = Fault.Heal (a, b)
                  && s'.Fault.at_depth > s.Fault.at_depth)
                plan
            in
            Alcotest.(check bool) "partition healed" true healed
        | Fault.Crash _ | Fault.Heal _ -> ())
      plan
  done

(* ---- strategies ------------------------------------------------------ *)

let test_sched_records () =
  let s = Sched.random 5 in
  let picks = List.init 20 (fun i -> Sched.choose s (2 + (i mod 4))) in
  Alcotest.(check int) "depth" 20 (Sched.depth s);
  Alcotest.(check (list int)) "decisions" picks
    (Array.to_list (Sched.decisions s));
  Array.iteri
    (fun i w -> Alcotest.(check int) "width" (2 + (i mod 4)) w)
    (Sched.widths s);
  (* Replaying the recorded decisions through a Fixed strategy yields the
     same choices. *)
  let f = Sched.fixed (Sched.decisions s) in
  List.iteri
    (fun i w ->
      Alcotest.(check int)
        (Printf.sprintf "fixed pick %d" i)
        (List.nth picks i) (Sched.choose f w))
    (List.init 20 (fun i -> 2 + (i mod 4)))

let test_sched_fixed_defaults () =
  (* Beyond the prefix, and on out-of-range entries, Fixed falls back to
     choice 0 (the simulator's default order). *)
  let s = Sched.fixed [| 1; 9 |] in
  Alcotest.(check int) "in prefix" 1 (Sched.choose s 3);
  Alcotest.(check int) "out of range" 0 (Sched.choose s 3);
  Alcotest.(check int) "past prefix" 0 (Sched.choose s 3)

(* ---- exploring the real protocols ------------------------------------ *)

let test_paxos_random_clean () =
  let r = Explore.random_walk Scenarios.paxos ~seed:1 ~budget:300 () in
  Alcotest.(check int) "all schedules run" 300 r.Explore.schedules;
  Alcotest.(check bool) "no violation" true (r.Explore.violation = None);
  Alcotest.(check bool) "states covered" true (r.Explore.distinct_states > 300)

let test_paxos_random_faults_clean () =
  let r =
    Explore.random_walk ~random_faults:true Scenarios.paxos ~seed:7
      ~budget:300 ()
  in
  Alcotest.(check bool) "no violation" true (r.Explore.violation = None)

let test_paxos_dfs_clean () =
  let r = Explore.dfs ~max_depth:8 Scenarios.paxos ~seed:1 ~budget:150 () in
  Alcotest.(check bool) "no violation" true (r.Explore.violation = None);
  Alcotest.(check bool) "ran schedules" true (r.Explore.schedules > 10)

let test_tob_random_clean () =
  let r = Explore.random_walk Scenarios.tob ~seed:3 ~budget:60 () in
  Alcotest.(check bool) "no violation" true (r.Explore.violation = None)

let test_tob_member_crash_clean () =
  (* Crashing one of three TOB members: the survivors re-elect and keep
     total order. *)
  let faults = [ { Fault.at_depth = 15; op = Fault.Crash 1 } ] in
  let r = Explore.random_walk ~faults Scenarios.tob ~seed:5 ~budget:25 () in
  Alcotest.(check bool) "no violation" true (r.Explore.violation = None)

(* Consensus pipelining: the total-order monitors must hold no matter how
   many batches a member keeps in flight through consensus (k = 1, 2, 4),
   under both random walks and DFS. *)
let test_tob_windows_random_clean () =
  List.iter
    (fun sc ->
      let r = Explore.random_walk sc ~seed:3 ~budget:40 () in
      Alcotest.(check bool)
        (Printf.sprintf "no violation (%s, random)" sc.Scenario.name)
        true
        (r.Explore.violation = None))
    [ Scenarios.tob; Scenarios.tob_w2; Scenarios.tob_w4 ]

let test_tob_windows_dfs_clean () =
  List.iter
    (fun sc ->
      let r = Explore.dfs ~max_depth:8 sc ~seed:3 ~budget:40 () in
      Alcotest.(check bool)
        (Printf.sprintf "no violation (%s, dfs)" sc.Scenario.name)
        true
        (r.Explore.violation = None))
    [ Scenarios.tob; Scenarios.tob_w2; Scenarios.tob_w4 ]

let test_smr_windows_clean () =
  List.iter
    (fun sc ->
      let r = Explore.random_walk sc ~seed:1 ~budget:6 () in
      Alcotest.(check bool)
        (Printf.sprintf "no violation (%s, random)" sc.Scenario.name)
        true
        (r.Explore.violation = None);
      let r = Explore.dfs ~max_depth:6 sc ~seed:1 ~budget:6 () in
      Alcotest.(check bool)
        (Printf.sprintf "no violation (%s, dfs)" sc.Scenario.name)
        true
        (r.Explore.violation = None))
    [ Scenarios.smr_w2; Scenarios.smr_w4 ]

let test_pbr_random_clean () =
  let r = Explore.random_walk Scenarios.pbr ~seed:1 ~budget:12 () in
  Alcotest.(check bool) "no violation" true (r.Explore.violation = None)

let test_pbr_primary_crash_clean () =
  (* Crash the initial primary mid-run: failover must preserve state
     agreement and durability of acknowledged transactions. *)
  let faults = [ { Fault.at_depth = 40; op = Fault.Crash 0 } ] in
  let r = Explore.random_walk ~faults Scenarios.pbr ~seed:2 ~budget:8 () in
  Alcotest.(check bool) "no violation" true (r.Explore.violation = None)

let test_smr_random_clean () =
  let r = Explore.random_walk Scenarios.smr ~seed:1 ~budget:12 () in
  Alcotest.(check bool) "no violation" true (r.Explore.violation = None)

let test_exploration_deterministic () =
  let run () =
    let r =
      Explore.random_walk ~random_faults:true Scenarios.paxos ~seed:42
        ~budget:150 ()
    in
    (r.Explore.schedules, r.Explore.distinct_states, r.Explore.max_depth,
     r.Explore.total_events)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, identical exploration" true (a = b);
  let c =
    let r =
      Explore.random_walk ~random_faults:true Scenarios.paxos ~seed:43
        ~budget:150 ()
    in
    (r.Explore.schedules, r.Explore.distinct_states, r.Explore.max_depth,
     r.Explore.total_events)
  in
  Alcotest.(check bool) "different seed, different coverage" true (a <> c)

(* ---- counterexamples on the broken broadcast double ------------------- *)

let find_buggy () =
  let r = Explore.random_walk Scenarios.buggy ~seed:3 ~budget:500 () in
  match r.Explore.violation with
  | Some t -> t
  | None -> Alcotest.fail "no violation found on the buggy double"

let test_buggy_counterexample_found () =
  let t = find_buggy () in
  Alcotest.(check string) "monitor" "tob-total-order" t.Trace.monitor;
  Alcotest.(check bool) "nonempty decisions" true
    (Array.length t.Trace.decisions > 0)

let test_buggy_replay () =
  let t = find_buggy () in
  let out = Explore.replay Scenarios.buggy t in
  match out.Scenario.violation with
  | Some v ->
      Alcotest.(check string) "same monitor" t.Trace.monitor
        v.Scenario.monitor
  | None -> Alcotest.fail "captured trace does not replay"

let test_buggy_shrunk_is_minimal () =
  (* The shrunk trace still fails, and removing its last decision makes it
     pass: greedy 1-minimality in the trimming dimension. *)
  let t = find_buggy () in
  let n = Array.length t.Trace.decisions in
  Alcotest.(check bool) "still fails" true
    ((Explore.replay Scenarios.buggy t).Scenario.violation <> None);
  let weaker =
    { t with Trace.decisions = Array.sub t.Trace.decisions 0 (n - 1) }
  in
  Alcotest.(check bool) "1-minimal" true
    ((Explore.replay Scenarios.buggy weaker).Scenario.violation = None)

let test_buggy_dfs_finds_it () =
  let r = Explore.dfs ~max_depth:8 Scenarios.buggy ~seed:3 ~budget:200 () in
  Alcotest.(check bool) "dfs finds the violation" true
    (r.Explore.violation <> None)

let test_trace_file_roundtrip () =
  let t = find_buggy () in
  let file = Filename.temp_file "check" ".trace" in
  Trace.save file t;
  (match Trace.load file with
  | Error e -> Alcotest.fail e
  | Ok t' ->
      Alcotest.(check string) "protocol" t.Trace.protocol t'.Trace.protocol;
      Alcotest.(check int) "seed" t.Trace.world_seed t'.Trace.world_seed;
      Alcotest.(check bool) "decisions" true
        (t.Trace.decisions = t'.Trace.decisions);
      Alcotest.(check bool) "faults" true (t.Trace.faults = t'.Trace.faults);
      let out = Explore.replay Scenarios.buggy t' in
      Alcotest.(check bool) "loaded trace replays" true
        (out.Scenario.violation <> None));
  Sys.remove file

(* ---- qcheck properties ------------------------------------------------ *)

let prop_fault_roundtrip =
  QCheck.Test.make ~count:100 ~name:"fault plan to_string/parse round-trip"
    QCheck.(small_int)
    (fun seed ->
      let plan =
        Fault.random (Sim.Prng.create seed) ~nodes:4 ~max_depth:30
      in
      Fault.parse (Fault.to_string plan) = Ok plan)

let prop_paxos_never_violates =
  QCheck.Test.make ~count:8 ~name:"paxos agreement holds across seeds"
    QCheck.(small_int)
    (fun seed ->
      let r =
        Explore.random_walk ~random_faults:true Scenarios.paxos ~seed
          ~budget:25 ()
      in
      r.Explore.violation = None)

let prop_buggy_counterexamples_replay =
  QCheck.Test.make ~count:8 ~name:"buggy counterexamples always replay"
    QCheck.(small_int)
    (fun seed ->
      let r = Explore.random_walk Scenarios.buggy ~seed ~budget:300 () in
      match r.Explore.violation with
      | None -> true (* some seeds may not hit it within the budget *)
      | Some t ->
          (Explore.replay Scenarios.buggy t).Scenario.violation <> None)

(* ---- durability: crash/restart schedules through real recovery -------- *)

(* Crash/restart plans need enough depth for transactions to commit before
   the crash; at shallow depths the fault lands on an idle replica and
   recovery has nothing to prove. *)
let recovery_depth = 300

let test_smr_durable_recovery_clean () =
  let r =
    Explore.random_walk ~fault_gen:Fault.random_recovery
      ~max_depth:recovery_depth Scenarios.smr_durable ~seed:3 ~budget:30 ()
  in
  Alcotest.(check bool) "no violation" true (r.Explore.violation = None)

let find_noreplay () =
  let r =
    Explore.random_walk ~fault_gen:Fault.random_recovery
      ~max_depth:recovery_depth Scenarios.smr_noreplay ~seed:3 ~budget:80 ()
  in
  match r.Explore.violation with
  | Some t -> t
  | None -> Alcotest.fail "no violation found on the no-replay fixture"

let test_noreplay_counterexample_found () =
  let t = find_noreplay () in
  Alcotest.(check string) "monitor" "smr-noreplay-no-committed-loss"
    t.Trace.monitor;
  Alcotest.(check bool) "plan contains a crash and a restart" true
    (List.exists (fun f -> match f.Fault.op with Fault.Crash _ -> true | _ -> false)
       t.Trace.faults
    && List.exists
         (fun f -> match f.Fault.op with Fault.Restart _ -> true | _ -> false)
         t.Trace.faults)

let test_noreplay_counterexample_replays () =
  let t = find_noreplay () in
  match (Explore.replay Scenarios.smr_noreplay t).Scenario.violation with
  | Some v ->
      Alcotest.(check string) "same monitor" t.Trace.monitor v.Scenario.monitor
  | None -> Alcotest.fail "captured durability trace does not replay"

(* ---- sharding: 2PC-over-TOB under coordinator crash/restart ----------- *)

let test_sharded_recovery_clean () =
  let r =
    Explore.random_walk ~fault_gen:Fault.random_recovery ~max_depth:2000
      Scenarios.sharded ~seed:3 ~budget:20 ()
  in
  Alcotest.(check bool) "no violation" true (r.Explore.violation = None)

let test_sharded_dfs_clean () =
  let r = Explore.dfs ~max_depth:200 Scenarios.sharded ~seed:1 ~budget:60 () in
  Alcotest.(check bool) "no violation" true (r.Explore.violation = None);
  Alcotest.(check bool) "ran schedules" true (r.Explore.schedules > 10)

(* The broken fixture drops the coordinator's decision journal: a crash
   after sending one participant's COMMIT but before the other's leaves
   a restarted coordinator unable to re-decide, and the presumed-abort
   timeout diverges from the already-applied commit. *)
let sharded_monitors =
  [
    "xshard-atomicity";
    "xshard-serializable";
    "sharded-nopersist-conservation";
    "sharded-nopersist-state-agreement";
  ]

let find_nopersist () =
  let r =
    Explore.random_walk ~fault_gen:Fault.random_recovery ~max_depth:2000
      Scenarios.sharded_nopersist ~seed:3 ~budget:40 ()
  in
  match r.Explore.violation with
  | Some t -> t
  | None -> Alcotest.fail "no violation found on the no-journal 2PC fixture"

let test_nopersist_counterexample_found () =
  let t = find_nopersist () in
  Alcotest.(check bool)
    (Printf.sprintf "violates a cross-shard monitor (%s)" t.Trace.monitor)
    true
    (List.mem t.Trace.monitor sharded_monitors);
  Alcotest.(check bool) "plan crashes and restarts the coordinator" true
    (List.exists
       (fun f -> match f.Fault.op with Fault.Crash _ -> true | _ -> false)
       t.Trace.faults
    && List.exists
         (fun f -> match f.Fault.op with Fault.Restart _ -> true | _ -> false)
         t.Trace.faults)

let test_nopersist_counterexample_replays () =
  let t = find_nopersist () in
  match (Explore.replay Scenarios.sharded_nopersist t).Scenario.violation with
  | Some v ->
      Alcotest.(check string) "same monitor" t.Trace.monitor v.Scenario.monitor
  | None -> Alcotest.fail "captured 2PC trace does not replay"

let prop_recovery_plan_shape =
  QCheck.Test.make ~count:100
    ~name:"recovery plans restart the crashed node strictly later"
    QCheck.(small_int)
    (fun seed ->
      let plan =
        Fault.random_recovery (Sim.Prng.create seed) ~nodes:3 ~max_depth:50
      in
      match plan with
      | [
       { Fault.at_depth = d1; op = Fault.Crash a };
       { Fault.at_depth = d2; op = Fault.Restart b };
      ] ->
          a = b && d2 > d1
      | _ -> false)

(* ---- runtime conformance properties ----------------------------------- *)

(* Soundness: a trace recorded from a correct run — any seed — replays
   clean through the LoE spec and the invariant monitors. *)
let prop_conform_recorded_clean =
  QCheck.Test.make ~count:4 ~name:"recorded sim traces replay clean"
    QCheck.(small_int)
    (fun seed ->
      let run =
        Conform.Record.sim_bank ~seed:(1 + (abs seed mod 1000)) ~clients:2
          ~count:8 ~rows:64 ()
      in
      Conform.Record.conformant
        ~meta:(Conform.Recorder.meta run.Conform.Record.recorder)
        (Conform.Recorder.events run.Conform.Record.recorder))

(* One reference trace, mutated many ways: sensitivity is per-event, not
   just per-fixture. *)
let conform_reference =
  lazy
    (let run = Conform.Record.sim_bank ~seed:5 ~clients:2 ~count:12 ~rows:64 () in
     ( Conform.Recorder.meta run.Conform.Record.recorder,
       Conform.Recorder.events run.Conform.Record.recorder ))

(* Sensitivity: dropping any single delivery that the trace later builds
   on is rejected by the checker. *)
let prop_conform_drop_rejected =
  QCheck.Test.make ~count:25
    ~name:"dropping any one built-on delivery is rejected"
    QCheck.(small_int)
    (fun pick ->
      let meta, events = Lazy.force conform_reference in
      match Conform.Mutate.droppable events with
      | [] -> QCheck.Test.fail_report "reference trace has no droppable event"
      | eligible ->
          let i = List.nth eligible (abs pick mod List.length eligible) in
          not (Conform.Record.conformant ~meta (Conform.Mutate.drop_at i events)))

let () =
  Alcotest.run "check"
    [
      ( "fault-dsl",
        [
          Alcotest.test_case "round-trip" `Quick test_fault_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_fault_parse_errors;
          Alcotest.test_case "random plans are crash-stop" `Quick
            test_fault_random_crash_stop;
        ] );
      ( "sched",
        [
          Alcotest.test_case "records decisions and widths" `Quick
            test_sched_records;
          Alcotest.test_case "fixed falls back to default" `Quick
            test_sched_fixed_defaults;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "paxos random clean" `Quick
            test_paxos_random_clean;
          Alcotest.test_case "paxos random+faults clean" `Quick
            test_paxos_random_faults_clean;
          Alcotest.test_case "paxos dfs clean" `Quick test_paxos_dfs_clean;
          Alcotest.test_case "tob random clean" `Quick test_tob_random_clean;
          Alcotest.test_case "tob member crash clean" `Quick
            test_tob_member_crash_clean;
          Alcotest.test_case "tob pipelining windows random clean" `Quick
            test_tob_windows_random_clean;
          Alcotest.test_case "tob pipelining windows dfs clean" `Quick
            test_tob_windows_dfs_clean;
          Alcotest.test_case "smr pipelining windows clean" `Quick
            test_smr_windows_clean;
          Alcotest.test_case "pbr random clean" `Quick test_pbr_random_clean;
          Alcotest.test_case "pbr primary crash clean" `Quick
            test_pbr_primary_crash_clean;
          Alcotest.test_case "smr random clean" `Quick test_smr_random_clean;
          Alcotest.test_case "exploration deterministic per seed" `Quick
            test_exploration_deterministic;
        ] );
      ( "counterexamples",
        [
          Alcotest.test_case "found on buggy double" `Quick
            test_buggy_counterexample_found;
          Alcotest.test_case "replays exactly" `Quick test_buggy_replay;
          Alcotest.test_case "shrunk trace is 1-minimal" `Quick
            test_buggy_shrunk_is_minimal;
          Alcotest.test_case "dfs finds it too" `Quick test_buggy_dfs_finds_it;
          Alcotest.test_case "trace file round-trip" `Quick
            test_trace_file_roundtrip;
        ] );
      ( "durability",
        [
          Alcotest.test_case "smr-durable clean under crash/restart" `Quick
            test_smr_durable_recovery_clean;
          Alcotest.test_case "no-replay fixture caught" `Quick
            test_noreplay_counterexample_found;
          Alcotest.test_case "no-replay counterexample replays" `Quick
            test_noreplay_counterexample_replays;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "sharded clean under crash/restart" `Quick
            test_sharded_recovery_clean;
          Alcotest.test_case "sharded dfs clean" `Quick test_sharded_dfs_clean;
          Alcotest.test_case "no-journal 2PC fixture caught" `Quick
            test_nopersist_counterexample_found;
          Alcotest.test_case "no-journal counterexample replays" `Quick
            test_nopersist_counterexample_replays;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_fault_roundtrip;
            prop_paxos_never_violates;
            prop_buggy_counterexamples_replay;
            prop_recovery_plan_shape;
            prop_conform_recorded_clean;
            prop_conform_drop_rejected;
          ] );
    ]
