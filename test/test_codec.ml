(* Round-trip properties for the ShadowDB wire codecs.

   The live socket runtime depends on encode/decode being exact inverses
   for every message the system can put on a link — values, transactions,
   broadcast entries and deliveries, Paxos protocol messages carrying
   entry batches, and database replication messages — and on every
   decoder rejecting truncated buffers instead of misparsing them. *)

module Codec = Shadowdb.Codec
module Value = Storage.Value
module Txn = Shadowdb.Txn
module Db_msg = Shadowdb.Db_msg
module Tob = Broadcast.Tob
module PM = Consensus.Paxos_msg

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_value =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) int;
        map (fun f -> Value.Float f) (float_bound_exclusive 1e6);
        map (fun s -> Value.Text s) (string_size (0 -- 20));
      ])

let gen_txn =
  QCheck.Gen.(
    map4
      (fun client seq kind params -> { Txn.client; seq; kind; params })
      (0 -- 1000) (0 -- 1000)
      (string_size ~gen:(char_range 'a' 'z') (1 -- 12))
      (list_size (0 -- 5) gen_value))

let gen_entry =
  QCheck.Gen.(
    map3
      (fun origin id payload -> { Tob.origin; id; payload })
      (0 -- 100) (0 -- 10_000)
      (string_size (0 -- 30)))

let gen_batch = QCheck.Gen.(list_size (0 -- 6) gen_entry)

let gen_deliver =
  QCheck.Gen.(
    map2 (fun seqno entry -> { Tob.seqno; entry }) (0 -- 10_000) gen_entry)

let gen_ballot =
  QCheck.Gen.(map2 (fun round leader -> { PM.round; leader }) (0 -- 50) (0 -- 9))

let gen_pvalue =
  QCheck.Gen.(
    map3 (fun b s c -> { PM.b; s; c }) gen_ballot (0 -- 1000) gen_batch)

let gen_paxos =
  QCheck.Gen.(
    oneof
      [
        map2 (fun src b -> PM.P1a { src; b }) (0 -- 9) gen_ballot;
        map3
          (fun src b accepted -> PM.P1b { src; b; accepted })
          (0 -- 9) gen_ballot
          (list_size (0 -- 4) gen_pvalue);
        map2 (fun src pv -> PM.P2a { src; pv }) (0 -- 9) gen_pvalue;
        map3
          (fun src b s -> PM.P2b { src; b; s })
          (0 -- 9) gen_ballot (0 -- 1000);
        map2 (fun s c -> PM.Propose { s; c }) (0 -- 1000) gen_batch;
        map2 (fun s c -> PM.Decision { s; c }) (0 -- 1000) gen_batch;
      ])

let gen_reply =
  QCheck.Gen.(
    map3
      (fun client seq outcome -> { Txn.client; seq; outcome })
      (0 -- 1000) (0 -- 1000)
      (oneof
         [
           map
             (fun rows -> Ok (List.map Array.of_list rows))
             (list_size (0 -- 3) (list_size (0 -- 3) gen_value));
           map (fun e -> Error e) (string_size (0 -- 15));
         ]))

let gen_row =
  QCheck.Gen.(
    map2
      (fun key vs -> (key, Array.of_list vs))
      (string_size ~gen:(char_range 'A' 'Z') (1 -- 8))
      (list_size (0 -- 4) gen_value))

let gen_db_msg =
  QCheck.Gen.(
    oneof
      [
        map (fun t -> Db_msg.Client_txn t) gen_txn;
        map3
          (fun cfg gseq txn -> Db_msg.Forward { cfg; gseq; txn })
          (0 -- 20) (0 -- 10_000) gen_txn;
        map2 (fun cfg gseq -> Db_msg.Ack { cfg; gseq }) (0 -- 20) (0 -- 10_000);
        map (fun r -> Db_msg.Reply r) gen_reply;
        map (fun cfg -> Db_msg.Heartbeat { cfg }) (0 -- 20);
        map2
          (fun cfg last_seq -> Db_msg.Elect { cfg; last_seq })
          (0 -- 20) (0 -- 10_000);
        map3
          (fun cfg txns upto -> Db_msg.Catchup { cfg; txns; upto })
          (0 -- 20)
          (list_size (0 -- 3) (pair (0 -- 10_000) gen_txn))
          (0 -- 10_000);
        (let* cfg = 0 -- 20
         and* rows = list_size (0 -- 3) gen_row
         and* upto = 0 -- 10_000
         and* last = bool
         and* clients = list_size (0 -- 3) gen_reply in
         return (Db_msg.Snapshot { cfg; rows; upto; last; clients }));
        map (fun cfg -> Db_msg.Recovered { cfg }) (0 -- 20);
        map2
          (fun cfg from_seq -> Db_msg.Snapshot_req { cfg; from_seq })
          (0 -- 20) (0 -- 10_000);
      ])

(* ------------------------------------------------------------------ *)
(* encode ∘ decode = id                                                *)
(* ------------------------------------------------------------------ *)

let roundtrip ~name ~gen ~print ~enc ~dec =
  QCheck.Test.make ~name ~count:300
    (QCheck.make ~print gen)
    (fun m -> match dec (enc m) with Ok m' -> m' = m | Error _ -> false)

let prop_value =
  QCheck.Test.make ~name:"value round-trips" ~count:300
    (QCheck.make ~print:Value.to_string gen_value)
    (fun v ->
      match Codec.decode_value (Codec.encode_value v) with
      | Ok (v', "") -> v' = v
      | Ok _ | Error _ -> false)

let prop_txn =
  roundtrip ~name:"txn round-trips" ~gen:gen_txn
    ~print:(fun t -> t.Txn.kind)
    ~enc:Codec.encode_txn ~dec:Codec.decode_txn

let prop_entry =
  QCheck.Test.make ~name:"entry round-trips (streaming)" ~count:300
    (QCheck.make ~print:(fun e -> e.Tob.payload) gen_entry)
    (fun e ->
      match Codec.decode_entry (Codec.encode_entry e ^ "tail") with
      | Ok (e', "tail") -> e' = e
      | Ok _ | Error _ -> false)

let prop_batch =
  roundtrip ~name:"batch round-trips" ~gen:gen_batch
    ~print:(fun b -> string_of_int (List.length b))
    ~enc:Codec.encode_batch ~dec:Codec.decode_batch_all

let prop_deliver =
  roundtrip ~name:"deliver round-trips" ~gen:gen_deliver
    ~print:(fun d -> string_of_int d.Tob.seqno)
    ~enc:Codec.encode_deliver ~dec:Codec.decode_deliver

let prop_paxos =
  roundtrip ~name:"paxos msg round-trips" ~gen:gen_paxos
    ~print:(fun m ->
      Format.asprintf "%a" (PM.pp (fun fmt b -> Format.fprintf fmt "|%d|" (List.length b))) m)
    ~enc:Codec.encode_core_paxos ~dec:Codec.decode_core_paxos

let prop_db_msg =
  roundtrip ~name:"db msg round-trips" ~gen:gen_db_msg
    ~print:(fun m -> string_of_int (Db_msg.size m))
    ~enc:Codec.encode_db_msg ~dec:Codec.decode_db_msg

(* ------------------------------------------------------------------ *)
(* Truncation rejection: every strict prefix must decode to Error.     *)
(* A decoder that accepts a prefix would silently drop fields when a    *)
(* TCP read boundary lands mid-message.                                 *)
(* ------------------------------------------------------------------ *)

let rejects_prefixes ~dec bytes =
  let ok = ref true in
  for len = 0 to String.length bytes - 1 do
    match dec (String.sub bytes 0 len) with
    | Ok _ -> ok := false
    | Error _ -> ()
  done;
  !ok

let prop_paxos_truncation =
  QCheck.Test.make ~name:"paxos decoder rejects truncated buffers" ~count:100
    (QCheck.make ~print:(fun _ -> "paxos msg") gen_paxos)
    (fun m -> rejects_prefixes ~dec:Codec.decode_core_paxos (Codec.encode_core_paxos m))

let prop_db_truncation =
  QCheck.Test.make ~name:"db decoder rejects truncated buffers" ~count:100
    (QCheck.make ~print:(fun _ -> "db msg") gen_db_msg)
    (fun m -> rejects_prefixes ~dec:Codec.decode_db_msg (Codec.encode_db_msg m))

let prop_deliver_truncation =
  QCheck.Test.make ~name:"deliver decoder rejects truncated buffers"
    ~count:100
    (QCheck.make ~print:(fun _ -> "deliver") gen_deliver)
    (fun d -> rejects_prefixes ~dec:Codec.decode_deliver (Codec.encode_deliver d))

let test_garbage_rejected () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "garbage %S rejected" s)
        true
        (Result.is_error (Codec.decode_db_msg s)
        && Result.is_error (Codec.decode_core_paxos s)
        && Result.is_error (Codec.decode_deliver s)))
    [
      "";
      "Z" (* bad tag / truncated body *);
      "\x80" (* unterminated varint at the tag position *);
      "A\x80" (* field varint with a dangling continuation bit *);
      "C" (* valid tag, empty body *);
      "F\x01\x01" (* valid tag, body stops mid-record *);
      "S\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff" (* overlong varint *);
    ]

(* ------------------------------------------------------------------ *)
(* Golden vectors: exact encoded bytes for fixed messages. These catch  *)
(* silent format drift — any change to the v2 wire layout must be       *)
(* deliberate (update the bytes here and the DESIGN.md format note).    *)
(* ------------------------------------------------------------------ *)

let golden_txn =
  {
    Txn.client = 7;
    seq = 42;
    kind = "put";
    params =
      [
        Value.Null;
        Value.Bool true;
        Value.Int (-3);
        Value.Int 300;
        Value.Float 1.5;
        Value.Text "hi";
      ];
  }

let golden_txn_bytes =
  "\x0e\x54\x06\x70\x75\x74\x0c\x4e\x54\x49\x05\x49\xd8\x04\x46\x00\x00\x00\x00\x00\x00\xf8\x3f\x53\x04\x68\x69"

let golden_batch =
  [
    { Tob.origin = 1; id = 2; payload = "ab" };
    { Tob.origin = 3; id = 130; payload = "" };
  ]

let golden_batch_bytes = "\x04\x02\x04\x04\x61\x62\x06\x84\x02\x00"

let golden_paxos =
  PM.P2a
    {
      src = 2;
      pv = { PM.b = { PM.round = 1; leader = 0 }; s = 5; c = golden_batch };
    }

let golden_paxos_bytes =
  "\x43\x04\x02\x00\x0a\x04\x02\x04\x04\x61\x62\x06\x84\x02\x00"

let test_golden_encodings () =
  Alcotest.(check string)
    "txn golden bytes" golden_txn_bytes
    (Codec.encode_txn golden_txn);
  Alcotest.(check string)
    "batch golden bytes" golden_batch_bytes
    (Codec.encode_batch golden_batch);
  Alcotest.(check string)
    "paxos golden bytes" golden_paxos_bytes
    (Codec.encode_core_paxos golden_paxos)

let test_golden_decodings () =
  Alcotest.(check bool)
    "txn golden decodes" true
    (Codec.decode_txn golden_txn_bytes = Ok golden_txn);
  Alcotest.(check bool)
    "batch golden decodes" true
    (Codec.decode_batch_all golden_batch_bytes = Ok golden_batch);
  Alcotest.(check bool)
    "paxos golden decodes" true
    (Codec.decode_core_paxos golden_paxos_bytes = Ok golden_paxos)

let test_golden_truncations () =
  Alcotest.(check bool)
    "every txn truncation rejected" true
    (rejects_prefixes ~dec:Codec.decode_txn golden_txn_bytes);
  Alcotest.(check bool)
    "every batch truncation rejected" true
    (rejects_prefixes ~dec:Codec.decode_batch_all golden_batch_bytes);
  Alcotest.(check bool)
    "every paxos truncation rejected" true
    (rejects_prefixes ~dec:Codec.decode_core_paxos golden_paxos_bytes)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "codec"
    [
      ( "roundtrip",
        [
          qt prop_value;
          qt prop_txn;
          qt prop_entry;
          qt prop_batch;
          qt prop_deliver;
          qt prop_paxos;
          qt prop_db_msg;
        ] );
      ( "truncation",
        [
          qt prop_paxos_truncation;
          qt prop_db_truncation;
          qt prop_deliver_truncation;
          Alcotest.test_case "garbage rejected" `Quick test_garbage_rejected;
        ] );
      ( "golden",
        [
          Alcotest.test_case "encodings" `Quick test_golden_encodings;
          Alcotest.test_case "decodings" `Quick test_golden_decodings;
          Alcotest.test_case "truncations rejected" `Quick
            test_golden_truncations;
        ] );
    ]
