(* Tests for the runtime conformance layer (lib/conform).

   The trace codec gets the same treatment as the wire codec suite: a
   golden vector pinning the on-disk format, round-trips, rejection of
   every strict prefix (truncation) and of header corruption. The replay
   checker and monitor bridge are exercised on small synthetic traces
   where the expected verdict is known by construction — in-order
   streams accepted, reordering/skips/fingerprint-mismatch pinpointed,
   crash/restart incarnations handled — and the online monitor and
   divergent-fixture mutators on the same. End-to-end recorded-run
   properties live in test_runtime.ml and test_check.ml. *)

module E = Conform.Event
module TF = Conform.Trace_file

let ev node step kind = { E.node; step; at = 0.25 *. float_of_int step; kind }

let deliver ?(payload = "p") node step seqno =
  ev node step (E.Deliver { seqno; origin = 1; id = seqno; payload })

let checkpoint node step ~gseq ~seqno ~hash =
  ev node step (E.Checkpoint { gseq; seqno; hash })

let sample_meta = [ ("workload", "bank"); ("rows", "8") ]

let sample_events =
  [
    ev 0 0 E.Init;
    ev 0 1 (E.Recv { src = 1; bytes = "hi" });
    ev 0 2 (E.Timer { id = 3; tag = "tick" });
    ev 0 2 (E.Send { dst = 1; bytes = "yo" });
    ev 0 3 (E.Deliver { seqno = 0; origin = 1; id = 7; payload = "pay" });
    ev 0 3 (E.Checkpoint { gseq = 1; seqno = 0; hash = 0x5a5a });
    ev 1 0 E.Crash;
    ev 1 1 E.Restart;
  ]

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

(* Every event tag, meta, and field width pinned: any codec change that
   silently alters the on-disk format fails here first. *)
let golden =
  "53445452310410776f726b6c6f61640862616e6b08726f7773023810000000000000\
   00000000490002000000000000d03f52020468690004000000000000e03f54060874\
   69636b0004000000000000e03f530204796f0006000000000000e83f4400020e0670\
   61790006000000000000e83f430200b4e90202000000000000000000580202000000\
   000000d03f42"

let test_codec_golden () =
  Alcotest.(check string)
    "encoding matches the golden vector" golden
    (hex (TF.encode ~meta:sample_meta sample_events))

let test_codec_roundtrip () =
  let enc = TF.encode ~meta:sample_meta sample_events in
  match TF.decode enc with
  | Ok (meta, events) ->
      Alcotest.(check bool) "meta round-trips" true (meta = sample_meta);
      Alcotest.(check bool) "events round-trip" true (events = sample_events)
  | Error e -> Alcotest.fail ("round-trip failed: " ^ e)

let test_codec_empty_roundtrip () =
  match TF.decode (TF.encode ~meta:[] []) with
  | Ok (meta, events) ->
      Alcotest.(check bool) "empty trace round-trips" true
        (meta = [] && events = [])
  | Error e -> Alcotest.fail ("empty round-trip failed: " ^ e)

(* Every strict prefix of a valid encoding must be rejected: the format
   has no trailing-garbage tolerance and no silent truncation. *)
let test_codec_truncation () =
  let enc = TF.encode ~meta:sample_meta sample_events in
  for len = 0 to String.length enc - 1 do
    match TF.decode (String.sub enc 0 len) with
    | Ok _ ->
        Alcotest.failf "truncation to %d of %d bytes decoded" len
          (String.length enc)
    | Error _ -> ()
  done

let test_codec_trailing_rejected () =
  let enc = TF.encode ~meta:sample_meta sample_events in
  match TF.decode (enc ^ "\x00") with
  | Ok _ -> Alcotest.fail "trailing byte accepted"
  | Error _ -> ()

let test_codec_corrupt_header () =
  let enc = TF.encode ~meta:sample_meta sample_events in
  (* Magic *)
  let bad = Bytes.of_string enc in
  Bytes.set bad 0 'X';
  (match TF.decode (Bytes.to_string bad) with
  | Ok _ -> Alcotest.fail "corrupted magic accepted"
  | Error _ -> ());
  (* Unknown event tag: the final byte of this encoding is the trailing
     Restart event's tag ('B' carries no fields). *)
  let flipped = Bytes.of_string enc in
  Bytes.set flipped (String.length enc - 1) 'Z';
  match TF.decode (Bytes.to_string flipped) with
  | Ok _ -> Alcotest.fail "unknown event tag accepted"
  | Error _ -> ()

(* ------------------------------ replay ------------------------------- *)

let divergences events =
  (Conform.Replay.check events).Conform.Replay.r_divergences

let test_replay_in_order () =
  let events =
    [
      deliver 0 1 0;
      checkpoint 0 1 ~gseq:1 ~seqno:0 ~hash:10;
      deliver 0 2 1;
      checkpoint 0 2 ~gseq:2 ~seqno:1 ~hash:11;
      deliver 1 1 0;
      checkpoint 1 1 ~gseq:1 ~seqno:0 ~hash:10;
    ]
  in
  Alcotest.(check int) "conformant" 0 (List.length (divergences events))

let test_replay_reorder_flagged () =
  let events = [ deliver 0 1 0; deliver 0 2 2; deliver 0 3 1 ] in
  match divergences events with
  | [] -> Alcotest.fail "reordered stream accepted"
  | d :: _ ->
      Alcotest.(check bool) "pinpoints the out-of-order delivery" true
        (d.Conform.Replay.dv_node = 0
        && String.length d.Conform.Replay.dv_what > 0)

let test_replay_checkpoint_mismatch () =
  let events = [ deliver 0 1 0; checkpoint 0 1 ~gseq:1 ~seqno:4 ~hash:0 ] in
  Alcotest.(check bool) "checkpoint/delivery mismatch flagged" true
    (divergences events <> [])

let test_replay_restart_incarnations () =
  (* Apply 0..2, crash, recover and re-apply 1..3 (a group-commit-lost
     suffix re-executed): legitimate, two incarnations. *)
  let events =
    [
      deliver 0 1 0;
      deliver 0 2 1;
      deliver 0 3 2;
      ev 0 3 E.Crash;
      ev 0 4 E.Restart;
      deliver 0 5 1;
      deliver 0 6 2;
      deliver 0 7 3;
    ]
  in
  Alcotest.(check int) "recovery replay accepted" 0
    (List.length (divergences events))

let test_replay_restart_forward_gap () =
  (* Recovery resuming past what was applied skipped state. *)
  let events =
    [ deliver 0 1 0; ev 0 1 E.Crash; ev 0 2 E.Restart; deliver 0 3 5 ]
  in
  match divergences events with
  | [] -> Alcotest.fail "post-restart gap accepted"
  | d :: _ ->
      Alcotest.(check bool) "reported as a post-restart gap" true
        (String.length d.Conform.Replay.dv_what > 0)

(* ----------------------------- monitors ------------------------------ *)

let test_monitors_agreement_violation () =
  let events =
    [
      deliver 0 1 0;
      checkpoint 0 1 ~gseq:1 ~seqno:0 ~hash:10;
      deliver 1 1 0;
      checkpoint 1 1 ~gseq:1 ~seqno:0 ~hash:99;
    ]
  in
  let r = Conform.Monitors.check events in
  Alcotest.(check bool) "fingerprint disagreement caught" true
    (List.exists
       (fun (n, _) -> n = "conform-agreement")
       r.Conform.Monitors.m_violations)

let test_monitors_no_loss_violation () =
  let events = [ deliver 0 1 0; deliver 0 2 2 ] in
  let r = Conform.Monitors.check events in
  Alcotest.(check bool) "hole below the maximum caught" true
    (List.exists
       (fun (n, _) -> n = "conform-no-loss")
       r.Conform.Monitors.m_violations)

let test_monitors_clean () =
  let events =
    [
      deliver 0 1 0;
      checkpoint 0 1 ~gseq:1 ~seqno:0 ~hash:10;
      deliver 0 2 1;
      deliver 1 1 0;
      checkpoint 1 1 ~gseq:1 ~seqno:0 ~hash:10;
    ]
  in
  let r = Conform.Monitors.check events in
  Alcotest.(check bool) "clean trace passes all monitors" true
    (Conform.Monitors.ok r)

(* -------------------------- online monitor --------------------------- *)

let test_online_fifo () =
  let o = Conform.Online.create () in
  let tap = Conform.Online.tap o in
  (* node 0 sends "a" then "b" to node 1; node 1 receives in order. *)
  tap ~self:0 ~now:0.0 (Runtime.Ob_send { dst = 1; msg = "a" });
  tap ~self:0 ~now:0.0 (Runtime.Ob_send { dst = 1; msg = "b" });
  tap ~self:1 ~now:0.1 (Runtime.Ob_input (Runtime.Recv { src = 0; msg = "a" }));
  tap ~self:1 ~now:0.1 (Runtime.Ob_input (Runtime.Recv { src = 0; msg = "b" }));
  Alcotest.(check int) "in-order link is clean" 0 (Conform.Online.violations o);
  let o2 = Conform.Online.create () in
  let tap2 = Conform.Online.tap o2 in
  tap2 ~self:0 ~now:0.0 (Runtime.Ob_send { dst = 1; msg = "a" });
  tap2 ~self:0 ~now:0.0 (Runtime.Ob_send { dst = 1; msg = "b" });
  tap2 ~self:1 ~now:0.1
    (Runtime.Ob_input (Runtime.Recv { src = 0; msg = "b" }));
  Alcotest.(check bool) "reordered link is flagged" true
    (Conform.Online.violations o2 > 0)

let test_online_agreement () =
  let o = Conform.Online.create () in
  let tap : string Runtime.tap = Conform.Online.tap o in
  tap ~self:0 ~now:0.0 (Runtime.Ob_checkpoint { gseq = 1; seqno = 0; hash = 5 });
  tap ~self:1 ~now:0.0 (Runtime.Ob_checkpoint { gseq = 1; seqno = 0; hash = 5 });
  Alcotest.(check int) "agreeing fingerprints clean" 0
    (Conform.Online.violations o);
  tap ~self:2 ~now:0.0 (Runtime.Ob_checkpoint { gseq = 1; seqno = 0; hash = 6 });
  Alcotest.(check bool) "disagreeing fingerprint flagged" true
    (Conform.Online.violations o > 0)

(* ----------------------------- mutators ------------------------------ *)

let mutable_trace =
  [
    deliver 0 1 0;
    checkpoint 0 1 ~gseq:1 ~seqno:0 ~hash:10;
    deliver 0 2 1;
    checkpoint 0 2 ~gseq:2 ~seqno:1 ~hash:11;
    deliver 1 1 0;
    (* The tamper-hash fixture mutates node 0's first checkpoint; node 1
       attesting the same position is what convicts it. *)
    checkpoint 1 1 ~gseq:1 ~seqno:0 ~hash:10;
  ]

let test_mutate_fixtures_diverge () =
  List.iter
    (fun name ->
      match Conform.Mutate.apply name mutable_trace with
      | Error e -> Alcotest.failf "fixture %s not applicable: %s" name e
      | Ok mutated ->
          let replay = Conform.Replay.check mutated in
          let monitors = Conform.Monitors.check mutated in
          Alcotest.(check bool)
            (Printf.sprintf "fixture %s diverges" name)
            true
            (not
               (Conform.Replay.ok replay && Conform.Monitors.ok monitors)))
    Conform.Mutate.fixtures

let test_mutate_droppable () =
  (* Only node 0's first delivery has a later same-node delivery. *)
  Alcotest.(check (list int)) "droppable indices" [ 0 ]
    (Conform.Mutate.droppable mutable_trace);
  Alcotest.(check int) "drop_at removes one event"
    (List.length mutable_trace - 1)
    (List.length (Conform.Mutate.drop_at 0 mutable_trace))

let () =
  Alcotest.run "conform"
    [
      ( "trace-codec",
        [
          Alcotest.test_case "golden vector" `Quick test_codec_golden;
          Alcotest.test_case "round-trip" `Quick test_codec_roundtrip;
          Alcotest.test_case "empty round-trip" `Quick
            test_codec_empty_roundtrip;
          Alcotest.test_case "every truncation rejected" `Quick
            test_codec_truncation;
          Alcotest.test_case "trailing bytes rejected" `Quick
            test_codec_trailing_rejected;
          Alcotest.test_case "corrupt header rejected" `Quick
            test_codec_corrupt_header;
        ] );
      ( "replay",
        [
          Alcotest.test_case "in-order stream conformant" `Quick
            test_replay_in_order;
          Alcotest.test_case "reordering flagged" `Quick
            test_replay_reorder_flagged;
          Alcotest.test_case "checkpoint mismatch flagged" `Quick
            test_replay_checkpoint_mismatch;
          Alcotest.test_case "crash/restart incarnations" `Quick
            test_replay_restart_incarnations;
          Alcotest.test_case "post-restart forward gap flagged" `Quick
            test_replay_restart_forward_gap;
        ] );
      ( "monitors",
        [
          Alcotest.test_case "clean trace passes" `Quick test_monitors_clean;
          Alcotest.test_case "fingerprint disagreement" `Quick
            test_monitors_agreement_violation;
          Alcotest.test_case "lost entry (hole)" `Quick
            test_monitors_no_loss_violation;
        ] );
      ( "online",
        [
          Alcotest.test_case "per-link FIFO" `Quick test_online_fifo;
          Alcotest.test_case "fingerprint agreement" `Quick
            test_online_agreement;
        ] );
      ( "mutate",
        [
          Alcotest.test_case "all fixtures diverge" `Quick
            test_mutate_fixtures_diverge;
          Alcotest.test_case "droppable eligibility" `Quick
            test_mutate_droppable;
        ] );
    ]
