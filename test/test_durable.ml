(* Durability subsystem: WAL framing, snapshots, the two backends, and
   deterministic crash recovery through the manager. *)

module Wal = Durable.Wal
module Backend = Durable.Backend
module Manager = Durable.Manager
module Snapshot = Durable.Snapshot
module Database = Storage.Database
module Value = Storage.Value

(* ---- crc32 ------------------------------------------------------------ *)

let test_crc_known () =
  (* IEEE 802.3 test vector. *)
  Alcotest.(check int)
    "check value" 0xCBF43926
    (Durable.Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Durable.Crc32.string "");
  Alcotest.(check bool)
    "incremental = whole" true
    (let s = "hello, durable world" in
     let mid = 7 in
     let c1 = Durable.Crc32.update 0 s ~pos:0 ~len:mid in
     Durable.Crc32.update c1 s ~pos:mid ~len:(String.length s - mid)
     = Durable.Crc32.string s)

(* ---- WAL framing ------------------------------------------------------- *)

let record i =
  {
    Wal.idx = i * 3;
    aux = i + 1;
    hash = Hashtbl.hash (i, "h");
    payload = Printf.sprintf "payload-%d-%s" i (String.make (i mod 17) 'x');
  }

let test_wal_roundtrip_basic () =
  let rs = List.init 5 record in
  let stream = String.concat "" (List.map Wal.encode_record rs) in
  let scan = Wal.scan stream in
  Alcotest.(check bool) "all records" true (scan.Wal.records = rs);
  Alcotest.(check int) "no torn bytes" 0 scan.Wal.torn_bytes;
  Alcotest.(check int) "all bytes valid" (String.length stream)
    scan.Wal.valid_bytes

(* Every proper prefix of the byte stream yields exactly the records that
   fit whole in it — a cut mid-record is torn tail, never a record. *)
let test_wal_every_prefix () =
  let rs = List.init 4 record in
  let encoded = List.map Wal.encode_record rs in
  let stream = String.concat "" encoded in
  (* Byte offset at which each record ends. *)
  let ends =
    List.rev
      (fst
         (List.fold_left
            (fun (acc, off) e ->
              let off = off + String.length e in
              (off :: acc, off))
            ([], 0) encoded))
  in
  for cut = 0 to String.length stream do
    let scan = Wal.scan (String.sub stream 0 cut) in
    let whole = List.length (List.filter (fun e -> e <= cut) ends) in
    Alcotest.(check int)
      (Printf.sprintf "whole records at cut %d" cut)
      whole
      (List.length scan.Wal.records);
    Alcotest.(check bool)
      (Printf.sprintf "records are the prefix at cut %d" cut)
      true
      (scan.Wal.records = List.filteri (fun i _ -> i < whole) rs);
    Alcotest.(check int)
      (Printf.sprintf "torn accounts for the rest at cut %d" cut)
      (cut - scan.Wal.valid_bytes)
      scan.Wal.torn_bytes
  done

let test_wal_crc_rejects_corruption () =
  let r = record 2 in
  let e = Wal.encode_record r in
  (* Flip one bit of every byte in turn: no corrupted image may yield a
     record (header corruption changes length/CRC; body corruption fails
     the CRC). *)
  for i = 0 to String.length e - 1 do
    let b = Bytes.of_string e in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    let scan = Wal.scan (Bytes.to_string b) in
    Alcotest.(check bool)
      (Printf.sprintf "corrupt byte %d yields no record" i)
      true
      (scan.Wal.records = [] || scan.Wal.records = [ r ]);
    (* A flipped length byte could still describe a shorter valid frame
       only if the CRC matched by chance; with one record that cannot
       produce the original. *)
    Alcotest.(check bool)
      (Printf.sprintf "corrupt byte %d never equals original" i)
      true
      (scan.Wal.records <> [ r ])
  done

let prop_wal_record_roundtrip =
  QCheck.Test.make ~count:500 ~name:"WAL record round-trip"
    QCheck.(triple int int (string_of_size (QCheck.Gen.int_bound 64)))
    (fun (idx, aux, payload) ->
      let r = { Wal.idx; aux; hash = Hashtbl.hash (idx, aux); payload } in
      let scan = Wal.scan (Wal.encode_record r) in
      scan.Wal.records = [ r ] && scan.Wal.torn_bytes = 0)

let prop_wal_truncation_rejected =
  QCheck.Test.make ~count:300 ~name:"every WAL prefix cut is torn, not data"
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, cut_raw) ->
      let rng = Sim.Prng.create seed in
      let rs =
        List.init
          (1 + Sim.Prng.int rng 6)
          (fun i ->
            {
              Wal.idx = i;
              aux = Sim.Prng.int rng 1000;
              hash = Sim.Prng.int rng max_int;
              payload = String.make (Sim.Prng.int rng 40) 'p';
            })
      in
      let stream = String.concat "" (List.map Wal.encode_record rs) in
      let cut = cut_raw mod (String.length stream + 1) in
      let scan = Wal.scan (String.sub stream 0 cut) in
      let n = List.length scan.Wal.records in
      scan.Wal.records = List.filteri (fun i _ -> i < n) rs
      && scan.Wal.valid_bytes + scan.Wal.torn_bytes = cut)

(* ---- snapshots --------------------------------------------------------- *)

let test_snapshot_roundtrip () =
  let r = record 3 in
  (match Snapshot.decode (Snapshot.encode r) with
  | Ok r' -> Alcotest.(check bool) "round-trip" true (r = r')
  | Error e -> Alcotest.fail e);
  (match Snapshot.decode "BADMAGIC" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted");
  let enc = Snapshot.encode r in
  match Snapshot.decode (String.sub enc 0 (String.length enc - 3)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated snapshot accepted"

(* ---- in-memory backend ------------------------------------------------- *)

let test_mem_crash_semantics () =
  let m = Backend.mem_create () in
  let b = Backend.mem_backend m in
  b.Backend.log_append "aaaa";
  b.Backend.log_sync ();
  b.Backend.log_append "bbbb";
  Alcotest.(check string) "read sees everything" "aaaabbbb"
    (b.Backend.log_read ());
  Alcotest.(check string) "durable only synced" "aaaa"
    (Backend.mem_durable_log m);
  Backend.mem_crash ~keep:2 m;
  Alcotest.(check string) "torn prefix survives" "aaaabb"
    (Backend.mem_durable_log m);
  Alcotest.(check string) "post-crash read = durable" "aaaabb"
    (b.Backend.log_read ());
  Alcotest.(check int) "syncs counted" 1 (b.Backend.sync_count ())

(* ---- file backend ------------------------------------------------------ *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "durable-test-%d-%d" (Unix.getpid ()) !n)

let test_file_backend_roundtrip () =
  let dir = fresh_dir () in
  let b = Durable.File.create ~dir () in
  let r0 = record 0 and r1 = record 1 in
  b.Backend.log_append (Wal.encode_record r0);
  b.Backend.log_append (Wal.encode_record r1);
  b.Backend.log_sync ();
  b.Backend.snap_write (Snapshot.encode r0);
  b.Backend.close ();
  (* A second backend instance (a restarted process) sees the same
     bytes; so does the read-only observer. *)
  let b2 = Durable.File.create ~dir () in
  let scan = Wal.scan (b2.Backend.log_read ()) in
  Alcotest.(check bool) "records survive reopen" true
    (scan.Wal.records = [ r0; r1 ]);
  (match b2.Backend.snap_read () with
  | Some s -> (
      match Snapshot.decode s with
      | Ok r -> Alcotest.(check bool) "snapshot survives" true (r = r0)
      | Error e -> Alcotest.fail e)
  | None -> Alcotest.fail "snapshot missing after reopen");
  let snap, log = Durable.File.read_dir dir in
  Alcotest.(check bool) "observer sees the same log" true
    (log = b2.Backend.log_read ());
  Alcotest.(check bool) "observer sees the snapshot" true (snap <> None);
  (* Torn tail on disk: truncation through the backend removes it. *)
  b2.Backend.log_append "torn-garbage";
  let scan2 = Wal.scan (b2.Backend.log_read ()) in
  Alcotest.(check bool) "garbage is torn" true (scan2.Wal.torn_bytes > 0);
  b2.Backend.log_truncate scan2.Wal.valid_bytes;
  Alcotest.(check bool) "truncated clean" true
    ((Wal.scan (b2.Backend.log_read ())).Wal.torn_bytes = 0);
  b2.Backend.close ()

(* ---- manager: deterministic crash recovery ----------------------------- *)

let bank_rows = 16

let deposit_txn i =
  let kind, params =
    Workload.Bank.deposit ~account:(i mod bank_rows) ~amount:(1 + (i mod 7))
  in
  { Shadowdb.Txn.client = 0; seq = i; kind; params }

let fresh_bank () =
  let db = Database.create Storage.Store.Hazel in
  Workload.Bank.setup ~rows:bank_rows db;
  db

(* Apply [n] deposits while journaling through a manager on [mem], then
   crash with [keep] torn bytes. Returns the per-position reference
   fingerprints and the pre-crash synced position. *)
let run_until_crash mem ~policy ~n ~keep =
  let reg = Workload.Bank.registry () in
  let db = fresh_bank () in
  let backend = Backend.mem_backend mem in
  let mgr, rep0 =
    Manager.recover backend policy ~install:(fun _ -> ()) ~apply:(fun _ -> ())
  in
  Alcotest.(check int) "fresh backend recovers to nothing" (-1)
    rep0.Manager.recovered_idx;
  let hashes = Array.make (max n 1) 0 in
  for i = 0 to n - 1 do
    let txn = deposit_txn i in
    (match (Shadowdb.Txn.execute reg db txn).Shadowdb.Txn.outcome with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    hashes.(i) <- Database.content_hash db;
    Manager.append mgr
      {
        Wal.idx = i;
        aux = i + 1;
        hash = hashes.(i);
        payload = Shadowdb.Codec.encode_txn txn;
      };
    Manager.maybe_snapshot mgr ~payload:(fun () ->
        Shadowdb.Codec.encode_rows (Database.dump db))
  done;
  let synced = Manager.durable_idx mgr in
  Backend.mem_crash ~keep mem;
  (hashes, synced)

let recover_into_fresh mem ~policy =
  let reg = Workload.Bank.registry () in
  let db = fresh_bank () in
  let install (r : Wal.record) =
    match Shadowdb.Codec.decode_rows r.Wal.payload with
    | Ok rows -> (
        Database.clear_data db;
        match Database.load_rows db rows with
        | Ok () -> ()
        | Error e -> Alcotest.fail e)
    | Error e -> Alcotest.fail e
  in
  let apply (r : Wal.record) =
    match Shadowdb.Codec.decode_txn r.Wal.payload with
    | Ok txn -> ignore (Shadowdb.Txn.execute reg db txn)
    | Error e -> Alcotest.fail e
  in
  let _, rep = Manager.recover (Backend.mem_backend mem) policy ~install ~apply in
  (db, rep)

let prop_crash_replay =
  QCheck.Test.make ~count:120
    ~name:"crash at any point, recover, state equals the no-crash run"
    QCheck.(small_int)
    (fun seed ->
      let rng = Sim.Prng.create (seed + 1) in
      let n = 1 + Sim.Prng.int rng 24 in
      let policy =
        {
          Manager.group_commit = 1 + Sim.Prng.int rng 4;
          snapshot_every = Sim.Prng.int rng 7;  (* 0 = never *)
          replay_tail = true;
        }
      in
      let keep = Sim.Prng.int rng 5 in
      let mem = Backend.mem_create () in
      let hashes, synced = run_until_crash mem ~policy ~n ~keep in
      let durable_frontier =
        (Manager.inspect
           ~snap:(Backend.mem_durable_snap mem)
           ~log:(Backend.mem_durable_log mem))
          .Manager.i_durable_idx
      in
      let db, rep = recover_into_fresh mem ~policy in
      (* No committed loss: everything synced before the crash is
         recovered; replay reaches exactly the durable frontier. *)
      rep.Manager.recovered_idx >= synced
      && rep.Manager.recovered_idx = durable_frontier
      &&
      (* The recovered state is byte-for-byte the state of a run that
         stopped at the recovered position — crash and replay are
         invisible. *)
      match rep.Manager.recovered_idx with
      | -1 -> Database.content_hash db = Database.content_hash (fresh_bank ())
      | k ->
          Database.content_hash db = hashes.(k)
          && rep.Manager.recovered_hash = hashes.(k))

let prop_noreplay_fixture_loses_data =
  QCheck.Test.make ~count:40
    ~name:"replay_tail=false fixture provably loses committed records"
    QCheck.(small_int)
    (fun seed ->
      let rng = Sim.Prng.create (seed + 1) in
      let n = 2 + Sim.Prng.int rng 10 in
      let policy =
        { Manager.group_commit = 1; snapshot_every = 0; replay_tail = false }
      in
      let mem = Backend.mem_create () in
      let _, synced = run_until_crash mem ~policy ~n ~keep:0 in
      let _, rep = recover_into_fresh mem ~policy in
      (* Every record was synced (group_commit = 1), yet the broken
         recovery comes back empty-handed. *)
      synced = n - 1 && rep.Manager.recovered_idx = -1)

let test_manager_snapshot_resets_log () =
  let mem = Backend.mem_create () in
  let policy =
    { Manager.group_commit = 1; snapshot_every = 3; replay_tail = true }
  in
  let _ = run_until_crash mem ~policy ~n:7 ~keep:0 in
  let scan = Wal.scan (Backend.mem_durable_log mem) in
  Alcotest.(check bool) "log holds only the post-snapshot suffix" true
    (List.length scan.Wal.records < 7);
  Alcotest.(check bool) "snapshot present" true
    (Backend.mem_durable_snap mem <> None);
  let db, rep = recover_into_fresh mem ~policy in
  Alcotest.(check int) "recovered to the last applied position" 6
    rep.Manager.recovered_idx;
  Alcotest.(check bool) "snapshot was used" true rep.Manager.snapshot_valid;
  Alcotest.(check bool) "stale records skipped, fresh replayed" true
    (rep.Manager.wal_replayed = List.length scan.Wal.records);
  ignore db

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "durable"
    [
      ("crc32", [ Alcotest.test_case "known vectors" `Quick test_crc_known ]);
      ( "wal",
        [
          Alcotest.test_case "round-trip" `Quick test_wal_roundtrip_basic;
          Alcotest.test_case "every prefix cut is torn" `Quick
            test_wal_every_prefix;
          Alcotest.test_case "corruption rejected" `Quick
            test_wal_crc_rejects_corruption;
          qt prop_wal_record_roundtrip;
          qt prop_wal_truncation_rejected;
        ] );
      ( "snapshot",
        [ Alcotest.test_case "round-trip and rejection" `Quick
            test_snapshot_roundtrip ] );
      ( "backends",
        [
          Alcotest.test_case "mem crash semantics" `Quick
            test_mem_crash_semantics;
          Alcotest.test_case "file backend round-trip" `Quick
            test_file_backend_roundtrip;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "snapshot + suffix replay" `Quick
            test_manager_snapshot_resets_log;
          qt prop_crash_replay;
          qt prop_noreplay_fixture_loses_data;
        ] );
    ]
