(* Tests for the runtime-polymorphic process layer.

   The same handlers — written once against the Runtime capability
   records — must behave identically whether hosted on the deterministic
   simulator (Of_sim) or on the live socket runtime (Live, one thread and
   TCP listener per node on loopback). The suite exercises the generic
   process shell on both substrates, checks Of_sim keeps the simulator
   deterministic, and finishes with the acceptance scenario: a 3-node
   Paxos-backed SMR cluster on the live runtime running ≥100 bank
   transactions end-to-end, reporting wall-clock p50/p99. *)

module R = Runtime
module Engine = Sim.Engine
module S = Shadowdb.System.Make (Consensus.Paxos)

(* ------------------------------------------------------------------ *)
(* A tiny protocol over int messages: a driver bounces a counter off an
   echo machine until it reaches [limit]. The echo side is a pure
   Proc.machine; the driver is an imperative Proc.stateful_handler that
   starts the exchange from a timer (so Init, Recv and Timer inputs are
   all exercised on each runtime).                                      *)
(* ------------------------------------------------------------------ *)

type act = Send_to of Sim.Node_id.t * int

let echo_machine () =
  {
    R.Proc.init = (fun ~self:_ ~now:_ -> 0);
    start = (fun s ~now:_ -> (s, []));
    recv = (fun s ~now:_ ~src n -> (s + 1, [ Send_to (src, n + 1) ]));
    tick = (fun s ~now:_ ~tag:_ -> (s, []));
  }

let spawn_pingpong world ~limit ~on_reply ~echo_count =
  let echo =
    R.spawn world ~name:"echo" (fun () ->
        R.Proc.node_handler ~machine:(echo_machine ())
          ~prj:(fun n -> Some n)
          ~on_step:(fun _ ~before:_ ~after -> Atomic.set echo_count after)
          ~interp:(fun ctx (Send_to (dst, n)) -> R.send ctx dst n)
          ())
  in
  R.spawn world ~name:"driver" (fun () ->
      R.Proc.stateful_handler
        ~init:(fun ~self:_ ~now:_ -> ())
        ~handle:(fun ctx () -> function
          | R.Init -> ignore (R.set_timer ctx 0.01 "go")
          | R.Timer _ -> R.send ctx echo 0
          | R.Recv { msg = n; _ } ->
              on_reply ctx n;
              if n < limit then R.send ctx echo n)
        ())

let run_pingpong_sim ~seed =
  let world = Engine.create ~seed () in
  let rworld = R.Of_sim.of_engine world in
  let echo_count = Atomic.make 0 in
  let replies = ref [] in
  let _ =
    spawn_pingpong rworld ~limit:10 ~echo_count ~on_reply:(fun ctx n ->
        replies := (R.time ctx, n) :: !replies)
  in
  Engine.run ~until:60.0 world;
  (Atomic.get echo_count, List.rev !replies)

let test_proc_pingpong_sim () =
  let echoed, replies = run_pingpong_sim ~seed:7 in
  Alcotest.(check int) "echo handled every message" 10 echoed;
  Alcotest.(check int) "driver saw every reply" 10 (List.length replies);
  Alcotest.(check (list int))
    "replies in order" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.map snd replies)

(* Of_sim is pure plumbing over the engine: the same seed must give the
   same virtual-time trace, to the last bit. *)
let test_of_sim_deterministic () =
  let a = run_pingpong_sim ~seed:42 in
  let b = run_pingpong_sim ~seed:42 in
  Alcotest.(check bool) "identical traces" true (a = b)

let int_codec =
  {
    R.enc = string_of_int;
    dec =
      (fun s ->
        match int_of_string_opt s with
        | Some n -> Ok n
        | None -> Error ("bad int frame: " ^ s));
  }

(* The very same handlers, hosted on real sockets. *)
let test_proc_pingpong_live () =
  let live = R.Live.create ~codec:int_codec () in
  let world = R.Live.runtime live in
  let echo_count = Atomic.make 0 in
  let final = Atomic.make (-1) in
  let _ =
    spawn_pingpong world ~limit:10 ~echo_count ~on_reply:(fun _ n ->
        if n >= 10 then Atomic.set final n)
  in
  R.Live.start live;
  let ok = R.Live.await ~timeout:30.0 live (fun () -> Atomic.get final >= 0) in
  R.Live.stop live;
  Alcotest.(check (list string)) "no runtime errors" [] (R.Live.errors live);
  Alcotest.(check bool) "exchange finished" true ok;
  Alcotest.(check int) "final reply" 10 (Atomic.get final);
  Alcotest.(check int) "echo handled every message" 10 (Atomic.get echo_count)

(* ------------------------------------------------------------------ *)
(* Acceptance: a 3-node Paxos-backed SMR bank cluster on the live
   runtime over loopback TCP — ≥100 transactions end-to-end, state
   agreement across the executing replicas, wall-clock p50/p99.         *)
(* ------------------------------------------------------------------ *)

let test_live_smr_bank () =
  let codec =
    S.wire_codec ~enc_core:Shadowdb.Codec.encode_core_paxos
      ~dec_core:Shadowdb.Codec.decode_core_paxos
  in
  let live = R.Live.create ~codec () in
  let world = R.Live.runtime live in
  let rows = 1_000 in
  let cluster =
    S.spawn_smr ~world ~registry:Workload.Bank.registry
      ~setup:(fun db -> Workload.Bank.setup ~rows db)
      ~n_active:2 ()
  in
  Alcotest.(check int) "three nodes" 3 (List.length cluster.S.smr_nodes);
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d has a bound port" l)
        true
        (R.Live.port_of live l <> None))
    cluster.S.smr_nodes;
  let clients = 4 and count = 30 in
  let mu = Mutex.create () in
  let commits = ref 0 in
  let latencies = Stats.Sample.create () in
  let make_txn ~client ~seq =
    let account = abs (Hashtbl.hash (client, seq)) mod rows in
    if seq mod 4 = 3 then Workload.Bank.balance ~account
    else Workload.Bank.deposit ~account ~amount:(1 + (seq mod 9))
  in
  let _, completed =
    S.spawn_clients ~world ~target:(S.To_smr cluster) ~n:clients ~count
      ~make_txn ~retry_timeout:2.0
      ~on_commit:(fun _now l ->
        Mutex.lock mu;
        incr commits;
        Stats.Sample.add latencies l;
        Mutex.unlock mu)
      ()
  in
  let t0 = Unix.gettimeofday () in
  R.Live.start live;
  let finished =
    R.Live.await ~timeout:120.0 live (fun () -> completed () >= clients)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  R.Live.stop live;
  Alcotest.(check (list string)) "no runtime errors" [] (R.Live.errors live);
  Alcotest.(check bool) "all clients finished" true finished;
  Alcotest.(check int) "clients completed" clients (completed ());
  Alcotest.(check bool)
    (Printf.sprintf "at least 100 transactions committed (got %d)" !commits)
    true
    (!commits >= 100 && !commits <= clients * count);
  Printf.printf
    "live smr: %d txns in %.3f s wall-clock — latency p50 %.2f ms, p99 %.2f ms\n%!"
    !commits elapsed
    (Stats.Sample.percentile latencies 50.0 *. 1e3)
    (Stats.Sample.percentile latencies 99.0 *. 1e3);
  (* The inactive spare tracks delivery sequence numbers but does not
     execute, so state agreement is defined over the active replicas. *)
  let executed =
    List.filter
      (fun l -> cluster.S.smr_active_of l && cluster.S.smr_gseq_of l > 0)
      cluster.S.smr_nodes
  in
  Alcotest.(check bool)
    "at least two replicas executed" true
    (List.length executed >= 2);
  (match List.map cluster.S.smr_hash_of executed with
  | h :: t ->
      Alcotest.(check bool) "state agreement" true (List.for_all (( = ) h) t)
  | [] -> Alcotest.fail "no replica executed")

let () =
  Alcotest.run "runtime"
    [
      ( "proc",
        [
          Alcotest.test_case "ping-pong on the simulator" `Quick
            test_proc_pingpong_sim;
          Alcotest.test_case "Of_sim is deterministic" `Quick
            test_of_sim_deterministic;
        ] );
      ( "live",
        [
          Alcotest.test_case "ping-pong over loopback TCP" `Quick
            test_proc_pingpong_live;
          Alcotest.test_case "3-node SMR bank cluster, 120 txns" `Slow
            test_live_smr_bank;
        ] );
    ]
