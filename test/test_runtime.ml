(* Tests for the runtime-polymorphic process layer.

   The same handlers — written once against the Runtime capability
   records — must behave identically whether hosted on the deterministic
   simulator (Of_sim), on the thread-per-node live socket runtime (Live),
   or on the single-reactor event-loop runtime (Loop). The suite
   exercises the generic process shell on all substrates, checks Of_sim
   keeps the simulator deterministic, runs the acceptance scenario — a
   3-node Paxos-backed SMR bank cluster with ≥100 transactions
   end-to-end, wall-clock p50/p99 — on both socket runtimes, drills
   crash/restart and outbox saturation (backpressure, bounded memory,
   no loss, per-link FIFO) under the loop runtime, and finishes with the
   cross-runtime conformance check: the same workload on Live and Loop
   must commit to identical database fingerprints. *)

module R = Runtime
module Engine = Sim.Engine
module S = Shadowdb.System.Make (Consensus.Paxos)

(* ------------------------------------------------------------------ *)
(* A tiny protocol over int messages: a driver bounces a counter off an
   echo machine until it reaches [limit]. The echo side is a pure
   Proc.machine; the driver is an imperative Proc.stateful_handler that
   starts the exchange from a timer (so Init, Recv and Timer inputs are
   all exercised on each runtime).                                      *)
(* ------------------------------------------------------------------ *)

type act = Send_to of Sim.Node_id.t * int

let echo_machine () =
  {
    R.Proc.init = (fun ~self:_ ~now:_ -> 0);
    start = (fun s ~now:_ -> (s, []));
    recv = (fun s ~now:_ ~src n -> (s + 1, [ Send_to (src, n + 1) ]));
    tick = (fun s ~now:_ ~tag:_ -> (s, []));
  }

let spawn_pingpong world ~limit ~on_reply ~echo_count =
  let echo =
    R.spawn world ~name:"echo" (fun () ->
        R.Proc.node_handler ~machine:(echo_machine ())
          ~prj:(fun n -> Some n)
          ~on_step:(fun _ ~before:_ ~after -> Atomic.set echo_count after)
          ~interp:(fun ctx (Send_to (dst, n)) -> R.send ctx dst n)
          ())
  in
  R.spawn world ~name:"driver" (fun () ->
      R.Proc.stateful_handler
        ~init:(fun ~self:_ ~now:_ -> ())
        ~handle:(fun ctx () -> function
          | R.Init -> ignore (R.set_timer ctx 0.01 "go")
          | R.Timer _ -> R.send ctx echo 0
          | R.Recv { msg = n; _ } ->
              on_reply ctx n;
              if n < limit then R.send ctx echo n)
        ())

let run_pingpong_sim ~seed =
  let world = Engine.create ~seed () in
  let rworld = R.Of_sim.of_engine world in
  let echo_count = Atomic.make 0 in
  let replies = ref [] in
  let _ =
    spawn_pingpong rworld ~limit:10 ~echo_count ~on_reply:(fun ctx n ->
        replies := (R.time ctx, n) :: !replies)
  in
  Engine.run ~until:60.0 world;
  (Atomic.get echo_count, List.rev !replies)

let test_proc_pingpong_sim () =
  let echoed, replies = run_pingpong_sim ~seed:7 in
  Alcotest.(check int) "echo handled every message" 10 echoed;
  Alcotest.(check int) "driver saw every reply" 10 (List.length replies);
  Alcotest.(check (list int))
    "replies in order" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.map snd replies)

(* Of_sim is pure plumbing over the engine: the same seed must give the
   same virtual-time trace, to the last bit. *)
let test_of_sim_deterministic () =
  let a = run_pingpong_sim ~seed:42 in
  let b = run_pingpong_sim ~seed:42 in
  Alcotest.(check bool) "identical traces" true (a = b)

let int_codec =
  {
    R.enc = string_of_int;
    dec =
      (fun s ->
        match int_of_string_opt s with
        | Some n -> Ok n
        | None -> Error ("bad int frame: " ^ s));
  }

(* The very same handlers, hosted on real sockets. *)
let test_proc_pingpong_live () =
  let live = R.Live.create ~codec:int_codec () in
  let world = R.Live.runtime live in
  let echo_count = Atomic.make 0 in
  let final = Atomic.make (-1) in
  let _ =
    spawn_pingpong world ~limit:10 ~echo_count ~on_reply:(fun _ n ->
        if n >= 10 then Atomic.set final n)
  in
  R.Live.start live;
  let ok = R.Live.await ~timeout:30.0 live (fun () -> Atomic.get final >= 0) in
  R.Live.stop live;
  Alcotest.(check (list string)) "no runtime errors" [] (R.Live.errors live);
  Alcotest.(check bool) "exchange finished" true ok;
  Alcotest.(check int) "final reply" 10 (Atomic.get final);
  Alcotest.(check int) "echo handled every message" 10 (Atomic.get echo_count)

(* The same exchange again, on the event-loop runtime through the
   uniform driver handle. [~direct:false] forces socket sinks for every
   destination, covering the reactor's TCP flush/accept/read path (the
   other loop tests run the default direct local delivery). *)
let test_proc_pingpong_loop () =
  let d = R.Driver.loop ~direct:false ~record_delivery:true ~codec:int_codec () in
  let echo_count = Atomic.make 0 in
  let final = Atomic.make (-1) in
  let _ =
    spawn_pingpong d.R.Driver.world ~limit:10 ~echo_count ~on_reply:(fun _ n ->
        if n >= 10 then Atomic.set final n)
  in
  d.R.Driver.start ();
  let ok = d.R.Driver.await ~timeout:30.0 (fun () -> Atomic.get final >= 0) in
  d.R.Driver.stop ();
  Alcotest.(check (list string)) "no runtime errors" [] (d.R.Driver.errors ());
  Alcotest.(check bool) "exchange finished" true ok;
  Alcotest.(check int) "final reply" 10 (Atomic.get final);
  Alcotest.(check int) "echo handled every message" 10 (Atomic.get echo_count);
  Alcotest.(check int) "per-link FIFO clean" 0 (d.R.Driver.fifo_violations ())

(* ------------------------------------------------------------------ *)
(* Acceptance: a 3-node Paxos-backed SMR bank cluster over loopback
   TCP — ≥100 transactions end-to-end, state agreement across the
   executing replicas, wall-clock p50/p99 — on either socket runtime
   through the uniform driver handle.                                   *)
(* ------------------------------------------------------------------ *)

let smr_codec () =
  S.wire_codec ~enc_core:Shadowdb.Codec.encode_core_paxos
    ~dec_core:Shadowdb.Codec.decode_core_paxos

(* Run the bank workload on [d] and return (commits, per-replica content
   hashes of the executing replicas, elapsed seconds, latency sample).
   Asserts completion, no runtime errors, and replica state agreement. *)
let run_smr_bank (d : _ R.Driver.t) ~label ~clients ~count =
  let rows = 1_000 in
  let cluster =
    S.spawn_smr ~world:d.R.Driver.world ~registry:Workload.Bank.registry
      ~setup:(fun db -> Workload.Bank.setup ~rows db)
      ~n_active:2 ()
  in
  Alcotest.(check int) "three nodes" 3 (List.length cluster.S.smr_nodes);
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d has a bound port" l)
        true
        (d.R.Driver.port_of l <> None))
    cluster.S.smr_nodes;
  let mu = Mutex.create () in
  let commits = ref 0 in
  let latencies = Stats.Sample.create () in
  let make_txn ~client ~seq =
    let account = abs (Hashtbl.hash (client, seq)) mod rows in
    if seq mod 4 = 3 then Workload.Bank.balance ~account
    else Workload.Bank.deposit ~account ~amount:(1 + (seq mod 9))
  in
  let _, completed =
    S.spawn_clients ~world:d.R.Driver.world ~target:(S.To_smr cluster)
      ~n:clients ~count ~make_txn ~retry_timeout:2.0
      ~on_commit:(fun _now l ->
        Mutex.lock mu;
        incr commits;
        Stats.Sample.add latencies l;
        Mutex.unlock mu)
      ()
  in
  let t0 = Unix.gettimeofday () in
  d.R.Driver.start ();
  let finished =
    d.R.Driver.await ~timeout:120.0 (fun () -> completed () >= clients)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  d.R.Driver.stop ();
  Alcotest.(check (list string)) "no runtime errors" [] (d.R.Driver.errors ());
  Alcotest.(check bool) "all clients finished" true finished;
  Alcotest.(check int) "clients completed" clients (completed ());
  Printf.printf
    "%s smr: %d txns in %.3f s wall-clock — latency p50 %.2f ms, p99 %.2f ms\n%!"
    label !commits elapsed
    (Stats.Sample.percentile latencies 50.0 *. 1e3)
    (Stats.Sample.percentile latencies 99.0 *. 1e3);
  (* The inactive spare tracks delivery sequence numbers but does not
     execute, so state agreement is defined over the active replicas. *)
  let executed =
    List.filter
      (fun l -> cluster.S.smr_active_of l && cluster.S.smr_gseq_of l > 0)
      cluster.S.smr_nodes
  in
  Alcotest.(check bool)
    "at least two replicas executed" true
    (List.length executed >= 2);
  let hashes = List.map cluster.S.smr_hash_of executed in
  (match hashes with
  | h :: t ->
      Alcotest.(check bool) "state agreement" true (List.for_all (( = ) h) t)
  | [] -> Alcotest.fail "no replica executed");
  (!commits, hashes, elapsed, latencies)

let test_live_smr_bank () =
  let d = R.Driver.live ~codec:(smr_codec ()) () in
  let clients = 4 and count = 30 in
  let commits, _, _, _ = run_smr_bank d ~label:"live" ~clients ~count in
  Alcotest.(check bool)
    (Printf.sprintf "at least 100 transactions committed (got %d)" commits)
    true
    (commits >= 100 && commits <= clients * count)

let test_loop_smr_bank () =
  let d = R.Driver.loop ~codec:(smr_codec ()) () in
  let clients = 4 and count = 30 in
  let commits, _, _, _ = run_smr_bank d ~label:"loop" ~clients ~count in
  Alcotest.(check bool)
    (Printf.sprintf "at least 100 transactions committed (got %d)" commits)
    true
    (commits >= 100 && commits <= clients * count)

(* ------------------------------------------------------------------ *)
(* Loop runtime: crash/restart, outbox saturation, conformance.        *)
(* ------------------------------------------------------------------ *)

(* A driver that survives the death of its peer: a heartbeat timer
   resends the current counter until the echo answers, so progress stalls
   across the crash window and resumes after restart. *)
let test_loop_crash_restart () =
  let loop = R.Loop.create ~record_delivery:true ~codec:int_codec () in
  let world = R.Loop.runtime loop in
  let limit = 40 in
  let progress = Atomic.make 0 in
  let echo =
    R.spawn world ~name:"echo" (fun () ->
        R.Proc.node_handler ~machine:(echo_machine ())
          ~prj:(fun n -> Some n)
          ~interp:(fun ctx (Send_to (dst, n)) -> R.send ctx dst n)
          ())
  in
  let _driver =
    R.spawn world ~name:"driver" (fun () ->
        let next = ref 0 in
        R.Proc.stateful_handler
          ~init:(fun ~self:_ ~now:_ -> ())
          ~handle:(fun ctx () -> function
            | R.Init -> ignore (R.set_timer ctx 0.01 "kick")
            | R.Timer _ ->
                if !next < limit then begin
                  R.send ctx echo !next;
                  ignore (R.set_timer ctx 0.1 "kick")
                end
            | R.Recv { msg = n; _ } ->
                if n > !next then begin
                  next := n;
                  Atomic.set progress n
                end;
                if !next < limit then R.send ctx echo !next)
          ())
  in
  R.Loop.start loop;
  let warmed =
    R.Loop.await ~timeout:30.0 loop (fun () -> Atomic.get progress >= 10)
  in
  Alcotest.(check bool) "progress before crash" true warmed;
  R.Loop.crash loop echo;
  let before = Atomic.get progress in
  Thread.delay 0.25;  (* driver heartbeats into the void *)
  R.Loop.restart loop echo;
  let finished =
    R.Loop.await ~timeout:30.0 loop (fun () -> Atomic.get progress >= limit)
  in
  R.Loop.stop loop;
  Alcotest.(check bool) "finished after restart" true finished;
  Alcotest.(check bool)
    (Printf.sprintf "crash did not rewind progress (%d -> %d)" before
       (Atomic.get progress))
    true
    (Atomic.get progress >= before);
  Alcotest.(check (list string)) "no runtime errors" [] (R.Loop.errors loop);
  Alcotest.(check int) "per-link FIFO clean across crash" 0
    (R.Loop.fifo_violations loop)

(* Saturate one outbox with tiny watermarks: a producer bursts far more
   bytes per dispatch than the high watermark, so backpressure must
   engage (parking the producer's next burst timer), memory must stay
   bounded by one burst of overshoot, and every message must still reach
   the consumer exactly once, in order. *)
let test_loop_outbox_saturation () =
  let high = 8 * 1024 and low = 2 * 1024 in
  let burst = 2_000 and bursts = 10 in
  let total = burst * bursts in
  let signalled = Atomic.make 0 in
  let loop =
    R.Loop.create ~high ~low ~record_delivery:true
      ~on_backpressure:(fun ~dst:_ ~bytes:_ -> Atomic.incr signalled)
      ~codec:int_codec ()
  in
  let world = R.Loop.runtime loop in
  let received = Atomic.make 0 in
  let disorder = Atomic.make 0 in
  let consumer =
    R.spawn world ~name:"consumer" (fun () ->
        let expected = ref 0 in
        R.Proc.stateful_handler
          ~init:(fun ~self:_ ~now:_ -> ())
          ~handle:(fun _ctx () -> function
            | R.Recv { msg = n; _ } ->
                if n <> !expected then Atomic.incr disorder;
                incr expected;
                Atomic.set received !expected
            | R.Init | R.Timer _ -> ())
          ())
  in
  let _producer =
    R.spawn world ~name:"producer" (fun () ->
        let sent = ref 0 in
        R.Proc.stateful_handler
          ~init:(fun ~self:_ ~now:_ -> ())
          ~handle:(fun ctx () -> function
            | R.Init -> ignore (R.set_timer ctx 0.0 "burst")
            | R.Timer _ ->
                if !sent < total then begin
                  for i = !sent to !sent + burst - 1 do
                    R.send ctx consumer i
                  done;
                  sent := !sent + burst;
                  ignore (R.set_timer ctx 0.0 "burst")
                end
            | R.Recv _ -> ())
          ())
  in
  R.Loop.start loop;
  let finished =
    R.Loop.await ~timeout:60.0 loop (fun () -> Atomic.get received >= total)
  in
  R.Loop.stop loop;
  let st = R.Loop.stats loop in
  Alcotest.(check (list string)) "no runtime errors" [] (R.Loop.errors loop);
  Alcotest.(check bool) "all messages delivered" true finished;
  Alcotest.(check int) "no loss, no duplication" total (Atomic.get received);
  Alcotest.(check int) "delivered in order" 0 (Atomic.get disorder);
  Alcotest.(check int) "per-link FIFO clean" 0 st.R.Loop.s_fifo_violations;
  Alcotest.(check bool)
    (Printf.sprintf "backpressure engaged (%d times)" st.R.Loop.s_backpressure)
    true
    (st.R.Loop.s_backpressure >= 1);
  Alcotest.(check bool) "harness saw the Backpressure signal" true
    (Atomic.get signalled >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "producer was parked (%d times)" st.R.Loop.s_parked)
    true (st.R.Loop.s_parked >= 1);
  (* A producer can overshoot the watermark only by what one dispatch
     emits: one burst of ~12-byte frames. *)
  let bound = high + (burst * 32) in
  Alcotest.(check bool)
    (Printf.sprintf "outbox memory bounded (peak %d <= %d)"
       st.R.Loop.s_peak_outbox_bytes bound)
    true
    (st.R.Loop.s_peak_outbox_bytes <= bound);
  Alcotest.(check bool)
    (Printf.sprintf "sends were coalesced (%d frames in %d writes)"
       st.R.Loop.s_sent_msgs st.R.Loop.s_flush_writes)
    true
    (st.R.Loop.s_flush_writes * 2 <= st.R.Loop.s_sent_msgs)

(* Cross-runtime conformance: the same deterministic closed-loop bank
   workload on the thread-per-node and event-loop runtimes must commit to
   identical database content fingerprints (TOB agreement end-to-end;
   commutativity of the deposit set makes the fingerprint schedule-
   independent, and duplicate suppression makes it retry-independent). *)
let test_runtime_conformance () =
  let clients = 3 and count = 20 in
  let _, live_hashes, _, _ =
    run_smr_bank
      (R.Driver.live ~codec:(smr_codec ()) ())
      ~label:"conformance/live" ~clients ~count
  in
  let d = R.Driver.loop ~record_delivery:true ~codec:(smr_codec ()) () in
  let _, loop_hashes, _, _ =
    run_smr_bank d ~label:"conformance/loop" ~clients ~count
  in
  Alcotest.(check int) "loop per-link FIFO clean" 0
    (d.R.Driver.fifo_violations ());
  match (live_hashes, loop_hashes) with
  | lh :: _, ph :: _ ->
      Alcotest.(check bool)
        (Printf.sprintf "identical committed-state fingerprints (%d vs %d)" lh
           ph)
        true (lh = ph)
  | _ -> Alcotest.fail "a runtime produced no executed replicas"

(* Recorded cross-runtime differential: the same seeded bank workload on
   all three runtimes, each run recorded through the conformance tap;
   every trace must replay clean through the LoE spec and the invariant
   monitors, and the most-advanced replica's final state fingerprint must
   be identical across sim, live and loop (the deposit set is determined
   by (client, seq), so the committed state is schedule-independent). *)

let final_fingerprint events =
  List.fold_left
    (fun acc (e : Conform.Event.t) ->
      match (e.Conform.Event.kind, acc) with
      | Conform.Event.Checkpoint { seqno; hash; _ }, Some (s, _) when seqno > s
        ->
          Some (seqno, hash)
      | Conform.Event.Checkpoint { seqno; hash; _ }, None -> Some (seqno, hash)
      | _ -> acc)
    None events

let test_recorded_differential () =
  let clients = 3 and count = 20 and rows = 1_000 in
  (* Sim leg: the shared recorded-reference-run helper (same workload
     formula as run_smr_bank). *)
  let sim = Conform.Record.sim_bank ~seed:11 ~clients ~count ~rows () in
  Alcotest.(check int)
    "sim clients completed" clients sim.Conform.Record.completed;
  let sim_events = Conform.Recorder.events sim.Conform.Record.recorder in
  let sim_meta = Conform.Recorder.meta sim.Conform.Record.recorder in
  Alcotest.(check bool) "sim trace conformant" true
    (Conform.Record.conformant ~meta:sim_meta sim_events);
  (* Live and loop legs: the acceptance harness with a recorder tapped
     into the driver. *)
  let record_leg rt_name make_driver =
    let meta =
      [
        ("workload", "bank");
        ("rows", string_of_int rows);
        ("runtime", rt_name);
      ]
    in
    let r = Conform.Recorder.create ~meta () in
    let tap = Conform.Recorder.tap r ~enc:(smr_codec ()).R.enc in
    let d = make_driver tap in
    let _ =
      run_smr_bank d ~label:("differential/" ^ rt_name) ~clients ~count
    in
    let events = Conform.Recorder.events r in
    Alcotest.(check bool)
      (rt_name ^ " trace conformant")
      true
      (Conform.Record.conformant ~meta events);
    events
  in
  let live_events =
    record_leg "live" (fun tap -> R.Driver.live ~tap ~codec:(smr_codec ()) ())
  in
  let loop_events =
    record_leg "loop" (fun tap -> R.Driver.loop ~tap ~codec:(smr_codec ()) ())
  in
  match
    ( final_fingerprint sim_events,
      final_fingerprint live_events,
      final_fingerprint loop_events )
  with
  | Some (_, a), Some (_, b), Some (_, c) ->
      Alcotest.(check bool)
        (Printf.sprintf "final fingerprints agree across runtimes (%x %x %x)"
           a b c)
        true
        (a = b && b = c)
  | _ -> Alcotest.fail "a recorded trace has no state checkpoints"

let () =
  Alcotest.run "runtime"
    [
      ( "proc",
        [
          Alcotest.test_case "ping-pong on the simulator" `Quick
            test_proc_pingpong_sim;
          Alcotest.test_case "Of_sim is deterministic" `Quick
            test_of_sim_deterministic;
        ] );
      ( "live",
        [
          Alcotest.test_case "ping-pong over loopback TCP" `Quick
            test_proc_pingpong_live;
          Alcotest.test_case "3-node SMR bank cluster, 120 txns" `Slow
            test_live_smr_bank;
        ] );
      ( "loop",
        [
          Alcotest.test_case "ping-pong on the event loop" `Quick
            test_proc_pingpong_loop;
          Alcotest.test_case "3-node SMR bank cluster, 120 txns" `Slow
            test_loop_smr_bank;
          Alcotest.test_case "crash/restart under the event loop" `Quick
            test_loop_crash_restart;
          Alcotest.test_case "outbox saturation: backpressure, no loss"
            `Quick test_loop_outbox_saturation;
          Alcotest.test_case "live vs loop committed-state conformance" `Slow
            test_runtime_conformance;
        ] );
      ( "conform",
        [
          Alcotest.test_case
            "recorded sim/live/loop traces replay clean, fingerprints agree"
            `Slow test_recorded_differential;
        ] );
    ]
