(* End-to-end tests for ShadowDB on the simulator: PBR normal case and
   recovery (catch-up and snapshot paths), SMR normal case, crash
   transparency and spare activation, exactly-once under client retries,
   durability, and state agreement across diverse backends. *)

module Engine = Sim.Engine
module Store = Storage.Store
module S = Shadowdb.System.Make (Consensus.Paxos)
module Txn = Shadowdb.Txn
module Value = Storage.Value

let rows = 200 (* scaled-down accounts table for fast tests *)

let fast_tun =
  {
    Shadowdb.System.default_tuning with
    hb_interval = 0.05;
    detect_timeout = 0.4;
  }

(* Deterministic per (client, seq): retries resend the same transaction. *)
let make_deposit ~client ~seq =
  let account = abs (Hashtbl.hash (client, seq)) mod rows in
  Workload.Bank.deposit ~account ~amount:1

let setup db = Workload.Bank.setup ~rows db

let pbr_world ?(backends = [ Store.Hazel ]) ?(tun = fast_tun) ?cache_cap
    ?(n_active = 2) ?(n_spare = 1) () =
  let tun =
    match cache_cap with
    | Some cap -> { tun with cache_cap = cap }
    | None -> tun
  in
  let world : S.wire Engine.t = Engine.create ~seed:3 () in
  let cluster =
    S.spawn_pbr ~tun ~backends ~world:(Runtime.Of_sim.of_engine world) ~registry:Workload.Bank.registry ~setup
      ~n_active ~n_spare ()
  in
  (world, cluster)

let run_pbr ?backends ?cache_cap ?crash_at ~n_clients ~count () =
  let world, cluster = pbr_world ?backends ?cache_cap () in
  let commits = ref 0 in
  let _, completed =
    S.spawn_clients ~world:(Runtime.Of_sim.of_engine world) ~target:(S.To_pbr cluster) ~n:n_clients ~count
      ~make_txn:make_deposit ~retry_timeout:1.0
      ~on_commit:(fun _ _ -> incr commits)
      ()
  in
  (match crash_at with
  | Some t ->
      Engine.at world t (fun () ->
          Engine.crash world cluster.S.pbr_initial_primary)
  | None -> ());
  Engine.run ~until:120.0 ~max_events:10_000_000 world;
  (world, cluster, completed (), !commits)

let check_pbr_agreement world cluster =
  let alive =
    List.filter (Engine.is_alive world) cluster.S.pbr_replicas
  in
  (* Among alive replicas, those in the final configuration must agree. *)
  let primary = cluster.S.pbr_primary_of (List.hd alive) in
  let in_final =
    List.filter (fun l -> cluster.S.pbr_gseq_of l = cluster.S.pbr_gseq_of primary) alive
  in
  let hashes = List.map cluster.S.pbr_hash_of in_final in
  match hashes with
  | h :: rest ->
      List.iteri
        (fun i h' ->
          Alcotest.(check int) (Printf.sprintf "replica %d state agrees" i) h h')
        rest
  | [] -> Alcotest.fail "no replicas alive"

let test_pbr_normal_case () =
  let world, cluster, completed, commits = run_pbr ~n_clients:3 ~count:20 () in
  Alcotest.(check int) "all clients completed" 3 completed;
  Alcotest.(check int) "every txn committed exactly once" 60 commits;
  Alcotest.(check int) "primary executed 60 txns" 60
    (cluster.S.pbr_gseq_of cluster.S.pbr_initial_primary);
  check_pbr_agreement world cluster

let test_pbr_diverse_backends_agree () =
  let world, cluster, completed, _ =
    run_pbr ~backends:[ Store.Hazel; Store.Hickory; Store.Dogwood ]
      ~n_clients:2 ~count:15 ()
  in
  Alcotest.(check int) "completed" 2 completed;
  check_pbr_agreement world cluster

let test_pbr_exactly_once_under_retries () =
  (* An aggressive client retry timeout forces duplicate submissions; the
     per-client dedup table must keep execution exactly-once. *)
  let world, cluster = pbr_world () in
  let commits = ref 0 in
  let _, completed =
    S.spawn_clients ~world:(Runtime.Of_sim.of_engine world) ~target:(S.To_pbr cluster) ~n:2 ~count:25
      ~make_txn:make_deposit ~retry_timeout:0.002
      ~on_commit:(fun _ _ -> incr commits)
      ()
  in
  Engine.run ~until:120.0 ~max_events:10_000_000 world;
  Alcotest.(check int) "completed" 2 (completed ());
  Alcotest.(check int) "commits" 50 !commits;
  Alcotest.(check int) "executed exactly 50 despite duplicates" 50
    (cluster.S.pbr_gseq_of cluster.S.pbr_initial_primary);
  check_pbr_agreement world cluster

let test_pbr_failover_catchup () =
  (* Crash the primary mid-run: the backup (largest sequence number) takes
     over, the spare joins via the transaction cache, clients finish. *)
  let world, cluster, completed, commits =
    run_pbr ~crash_at:1.0 ~n_clients:3 ~count:30 ()
  in
  Alcotest.(check int) "all clients completed despite crash" 3 completed;
  Alcotest.(check int) "all commits observed" 90 commits;
  let survivor = List.nth cluster.S.pbr_replicas 1 in
  let new_primary = cluster.S.pbr_primary_of survivor in
  Alcotest.(check bool) "primary moved off the crashed node" true
    (new_primary <> cluster.S.pbr_initial_primary);
  Alcotest.(check bool) "new primary alive" true
    (Engine.is_alive world new_primary);
  check_pbr_agreement world cluster

let test_pbr_failover_snapshot_path () =
  (* A tiny transaction cache forces the full-snapshot state transfer. *)
  let world, cluster, completed, _ =
    run_pbr ~cache_cap:2 ~crash_at:1.0 ~n_clients:3 ~count:30 ()
  in
  Alcotest.(check int) "completed via snapshot recovery" 3 completed;
  check_pbr_agreement world cluster

let test_pbr_durability () =
  (* Every answered deposit survives the crash: final total balance =
     initial + #commits (deposits are +1 each). *)
  let world, cluster, completed, commits =
    run_pbr ~crash_at:1.0 ~n_clients:2 ~count:40 ()
  in
  Alcotest.(check int) "completed" 2 completed;
  ignore world;
  let survivor = List.nth cluster.S.pbr_replicas 1 in
  Alcotest.(check int) "gseq reflects every commit" commits
    (cluster.S.pbr_gseq_of survivor)

let test_pbr_overlapped_state_transfer () =
  (* Three actives + spare, tiny cache: after the primary crash the
     up-to-date backup catches up from the cache and normal processing
     resumes immediately, while the spare's full snapshot streams in
     parallel (paper Sec. III-A last paragraph). *)
  let world, cluster = pbr_world ~cache_cap:10 ~n_active:3 ~n_spare:1 () in
  let commits = ref 0 in
  let first_post_crash = ref infinity in
  let crash_at = 0.2 in
  let _, completed =
    S.spawn_clients ~world:(Runtime.Of_sim.of_engine world) ~target:(S.To_pbr cluster) ~n:3 ~count:5000
      ~make_txn:make_deposit ~retry_timeout:0.5
      ~on_commit:(fun now _ ->
        incr commits;
        if now > crash_at && now < !first_post_crash then
          first_post_crash := now)
      ()
  in
  Engine.at world crash_at (fun () ->
      Engine.crash world cluster.S.pbr_initial_primary);
  (* Track when the spare (last replica) finishes its snapshot. *)
  let spare = List.nth cluster.S.pbr_replicas 3 in
  let spare_synced_at = ref infinity in
  let rec poll t =
    if t < 60.0 then
      Engine.at world t (fun () ->
          let survivor = List.nth cluster.S.pbr_replicas 1 in
          if
            !spare_synced_at = infinity
            && cluster.S.pbr_gseq_of spare > 0
            && cluster.S.pbr_gseq_of spare
               >= cluster.S.pbr_gseq_of survivor - 5
          then spare_synced_at := Engine.now world;
          poll (t +. 0.02))
  in
  poll (crash_at +. 0.05);
  Engine.run ~until:60.0 ~max_events:10_000_000 world;
  Alcotest.(check int) "all clients completed" 3 (completed ());
  Alcotest.(check int) "commits" 15_000 !commits;
  Alcotest.(check bool) "normal processing resumed" true
    (!first_post_crash < infinity);
  Alcotest.(check bool) "spare eventually synced" true
    (!spare_synced_at < infinity);
  check_pbr_agreement world cluster

(* ---------- Chain replication ---------- *)

let chain_world ?(n_active = 3) () =
  let world : S.wire Engine.t = Engine.create ~seed:9 () in
  let cluster =
    S.spawn_chain ~read_kinds:[ "balance" ] ~tun:fast_tun ~world:(Runtime.Of_sim.of_engine world)
      ~registry:Workload.Bank.registry ~setup ~n_active ~n_spare:1 ()
  in
  (world, cluster)

(* Clients alternate deposits and balance reads; reads are answered by the
   tail, writes traverse the whole chain. *)
let make_mixed ~client ~seq =
  if seq mod 3 = 2 then
    Workload.Bank.balance ~account:(abs (Hashtbl.hash (client, seq)) mod rows)
  else make_deposit ~client ~seq

let test_chain_normal_case () =
  let world, cluster = chain_world () in
  let commits = ref 0 in
  let _, completed =
    S.spawn_clients ~world:(Runtime.Of_sim.of_engine world) ~target:(S.To_pbr cluster) ~n:3 ~count:30
      ~make_txn:make_mixed ~retry_timeout:1.0
      ~on_commit:(fun _ _ -> incr commits)
      ()
  in
  Engine.run ~until:120.0 ~max_events:10_000_000 world;
  Alcotest.(check int) "all clients completed" 3 (completed ());
  Alcotest.(check int) "all answered" 90 !commits;
  (* Writes executed at every chain member (reads don't advance gseq). *)
  let writes = 3 * 30 * 2 / 3 in
  List.iteri
    (fun i l ->
      if i < 3 then
        Alcotest.(check int)
          (Printf.sprintf "chain member %d executed all writes" i)
          writes (cluster.S.pbr_gseq_of l))
    cluster.S.pbr_replicas;
  check_pbr_agreement world cluster

let test_chain_tail_reply_implies_all_executed () =
  (* The tail's reply is the commit point: when a client has an answer for
     write seq s, every member's database already reflects it. A quiescent
     run ending in agreement across all three members demonstrates it
     (stronger interleaved checks poll below). *)
  let world, cluster = chain_world () in
  let max_seen = ref 0 in
  let violated = ref false in
  let head = List.hd cluster.S.pbr_replicas in
  let _, completed =
    S.spawn_clients ~world:(Runtime.Of_sim.of_engine world) ~target:(S.To_pbr cluster) ~n:2 ~count:25
      ~make_txn:make_deposit ~retry_timeout:1.0
      ~on_commit:(fun _ _ ->
        incr max_seen;
        (* At every commit, the head must have executed at least as many
           writes as have been answered. *)
        if cluster.S.pbr_gseq_of head < !max_seen then violated := true)
      ()
  in
  Engine.run ~until:120.0 ~max_events:10_000_000 world;
  Alcotest.(check int) "completed" 2 (completed ());
  Alcotest.(check bool) "head never behind the commit point" false !violated

let test_chain_head_crash_recovery () =
  let world, cluster = chain_world () in
  let commits = ref 0 in
  let _, completed =
    S.spawn_clients ~world:(Runtime.Of_sim.of_engine world) ~target:(S.To_pbr cluster) ~n:3 ~count:2000
      ~make_txn:make_deposit ~retry_timeout:0.5
      ~on_commit:(fun _ _ -> incr commits)
      ()
  in
  Engine.at world 0.2 (fun () ->
      Engine.crash world (List.hd cluster.S.pbr_replicas));
  Engine.run ~until:120.0 ~max_events:20_000_000 world;
  Alcotest.(check int) "all clients completed despite head crash" 3
    (completed ());
  Alcotest.(check int) "every txn answered exactly once" 6000 !commits;
  check_pbr_agreement world cluster

(* ---------- SMR ---------- *)

let smr_world ?(tun = fast_tun) () =
  let world : S.wire Engine.t = Engine.create ~seed:5 () in
  let cluster =
    S.spawn_smr ~tun ~world:(Runtime.Of_sim.of_engine world) ~registry:Workload.Bank.registry ~setup
      ~n_active:2 ()
  in
  (world, cluster)

let run_smr ?crash_at ~n_clients ~count () =
  let world, cluster = smr_world () in
  let commits = ref 0 in
  let _, completed =
    S.spawn_clients ~world:(Runtime.Of_sim.of_engine world) ~target:(S.To_smr cluster) ~n:n_clients ~count
      ~make_txn:make_deposit ~retry_timeout:1.0
      ~on_commit:(fun _ _ -> incr commits)
      ()
  in
  (match crash_at with
  | Some t ->
      Engine.at world t (fun () ->
          Engine.crash world (List.hd cluster.S.smr_nodes))
  | None -> ());
  Engine.run ~until:120.0 ~max_events:10_000_000 world;
  (world, cluster, completed (), !commits)

let smr_active_hashes world cluster =
  cluster.S.smr_nodes
  |> List.filter (fun l ->
         Engine.is_alive world l && cluster.S.smr_active_of l)
  |> List.map cluster.S.smr_hash_of

let test_smr_normal_case () =
  let world, cluster, completed, commits = run_smr ~n_clients:3 ~count:20 () in
  Alcotest.(check int) "completed" 3 completed;
  Alcotest.(check int) "commits" 60 commits;
  (match smr_active_hashes world cluster with
  | h :: rest ->
      Alcotest.(check int) "two active replicas" 1 (List.length rest);
      List.iter (fun h' -> Alcotest.(check int) "states agree" h h') rest
  | [] -> Alcotest.fail "no active replicas")

let test_smr_crash_transparent () =
  (* Crash one active replica: the survivor answers; clients never stall
     (the paper: "a crash of a replica is transparent"). *)
  let world, cluster, completed, commits =
    run_smr ~crash_at:0.5 ~n_clients:3 ~count:25 ()
  in
  Alcotest.(check int) "completed through crash" 3 completed;
  Alcotest.(check int) "commits" 75 commits;
  ignore (world, cluster)

let test_smr_spare_activation () =
  (* After the crash the survivor reconfigures: the third machine's spare
     database syncs a snapshot and becomes active with an equal state. *)
  let world, cluster, completed, _ =
    run_smr ~crash_at:0.5 ~n_clients:2 ~count:40 ()
  in
  Alcotest.(check int) "completed" 2 completed;
  (* Drain any in-flight sync after the last client finished. *)
  Engine.run ~until:200.0 ~max_events:10_000_000 world;
  let actives =
    List.filter
      (fun l -> Engine.is_alive world l && cluster.S.smr_active_of l)
      cluster.S.smr_nodes
  in
  Alcotest.(check int) "spare activated: two active replicas" 2
    (List.length actives);
  match List.map cluster.S.smr_hash_of actives with
  | [ a; b ] -> Alcotest.(check int) "synced spare agrees" a b
  | _ -> Alcotest.fail "unexpected active set"

(* ---------- Randomized failure injection ---------- *)

(* Crash one arbitrary node (any replica, the spare, or a broadcast-service
   member) at an arbitrary time: clients must still finish with every
   transaction committed exactly once, and the surviving replicas of the
   final configuration must agree. *)
let prop_pbr_random_crash =
  QCheck.Test.make ~name:"PBR survives any single crash (random schedule)"
    ~count:12
    QCheck.(pair (int_bound 5) (float_bound_exclusive 1.5))
    (fun (victim_idx, crash_at) ->
      let world, cluster = pbr_world () in
      let commits = ref 0 in
      let _, completed =
        S.spawn_clients ~world:(Runtime.Of_sim.of_engine world) ~target:(S.To_pbr cluster) ~n:2 ~count:2500
          ~make_txn:make_deposit ~retry_timeout:0.5
          ~on_commit:(fun _ _ -> incr commits)
          ()
      in
      let victims = cluster.S.pbr_replicas @ cluster.S.pbr_tob in
      let victim = List.nth victims (victim_idx mod List.length victims) in
      Engine.at world (0.05 +. crash_at) (fun () -> Engine.crash world victim);
      Engine.run ~until:300.0 ~max_events:20_000_000 world;
      if completed () <> 2 || !commits <> 5000 then
        QCheck.Test.fail_reportf
          "victim node %d at %.3f s: completed=%d commits=%d" victim
          (0.05 +. crash_at) (completed ()) !commits;
      check_pbr_agreement world cluster;
      true)

let prop_smr_random_crash =
  QCheck.Test.make ~name:"SMR survives any single crash (random schedule)"
    ~count:10
    QCheck.(pair (int_bound 2) (float_bound_exclusive 1.0))
    (fun (victim_idx, crash_at) ->
      let world, cluster = smr_world () in
      let commits = ref 0 in
      let _, completed =
        S.spawn_clients ~world:(Runtime.Of_sim.of_engine world) ~target:(S.To_smr cluster) ~n:2 ~count:150
          ~make_txn:make_deposit ~retry_timeout:0.5
          ~on_commit:(fun _ _ -> incr commits)
          ()
      in
      let victim = List.nth cluster.S.smr_nodes victim_idx in
      Engine.at world (0.02 +. crash_at) (fun () -> Engine.crash world victim);
      Engine.run ~until:300.0 ~max_events:20_000_000 world;
      if completed () <> 2 || !commits <> 300 then
        QCheck.Test.fail_reportf
          "victim node %d at %.3f s: completed=%d commits=%d" victim
          (0.02 +. crash_at) (completed ()) !commits;
      true)

(* ---------- Txn / codec units ---------- *)

let test_txn_execute_rollback () =
  let db = Storage.Database.create Store.Hazel in
  Workload.Bank.setup ~rows:10 db;
  let reg = Workload.Bank.registry () in
  let before = Workload.Bank.total_balance db in
  let bad =
    Txn.execute reg db
      { Txn.client = 1; seq = 0; kind = "transfer";
        params = [ Value.Int 0; Value.Int 1; Value.Int 1_000_000 ] }
  in
  (match bad.Txn.outcome with
  | Error m -> Alcotest.(check string) "abort reason" "insufficient funds" m
  | Ok _ -> Alcotest.fail "expected abort");
  Alcotest.(check int) "state rolled back" before (Workload.Bank.total_balance db);
  let unknown =
    Txn.execute reg db { Txn.client = 1; seq = 1; kind = "nope"; params = [] }
  in
  Alcotest.(check bool) "unknown kind aborts" true
    (Result.is_error unknown.Txn.outcome)

let prop_txn_codec_roundtrip =
  let gen =
    QCheck.Gen.(
      map2
        (fun (client, seq) params ->
          {
            Txn.client;
            seq;
            kind = "deposit";
            params = List.map (fun i -> Value.Int i) params;
          })
        (pair small_nat small_nat)
        (list_size (0 -- 5) int))
  in
  QCheck.Test.make ~name:"txn codec round-trips" ~count:200 (QCheck.make gen)
    (fun txn ->
      match Shadowdb.Codec.decode_txn (Shadowdb.Codec.encode_txn txn) with
      | Ok txn' -> txn = txn'
      | Error _ -> false)

let prop_config_codec_roundtrip =
  QCheck.Test.make ~name:"config codec round-trips" ~count:200
    QCheck.(pair small_nat (list_of_size Gen.(0 -- 6) small_nat))
    (fun (seq, members) ->
      let c = { Shadowdb.Config.seq; members } in
      match
        Shadowdb.Codec.decode_reconfig
          (Shadowdb.Codec.encode_reconfig c ~last_seq:42 ~proposer:7)
      with
      | Ok (c', 42, 7) -> Shadowdb.Config.equal c c'
      | Ok _ | Error _ -> false)

let test_config_next () =
  let c = Shadowdb.Config.initial [ 1; 2; 3 ] in
  let c' = Shadowdb.Config.next c ~remove:[ 2 ] ~add:[ 9 ] in
  Alcotest.(check int) "seq bumped" 1 c'.Shadowdb.Config.seq;
  Alcotest.(check (list int)) "members" [ 1; 3; 9 ] c'.Shadowdb.Config.members

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "shadowdb"
    [
      ( "units",
        [
          Alcotest.test_case "txn execute/rollback" `Quick
            test_txn_execute_rollback;
          qt prop_txn_codec_roundtrip;
          qt prop_config_codec_roundtrip;
          Alcotest.test_case "config next" `Quick test_config_next;
        ] );
      ( "pbr",
        [
          Alcotest.test_case "normal case" `Quick test_pbr_normal_case;
          Alcotest.test_case "diverse backends agree" `Quick
            test_pbr_diverse_backends_agree;
          Alcotest.test_case "exactly-once under retries" `Quick
            test_pbr_exactly_once_under_retries;
          Alcotest.test_case "failover (catch-up)" `Quick
            test_pbr_failover_catchup;
          Alcotest.test_case "failover (snapshot)" `Quick
            test_pbr_failover_snapshot_path;
          Alcotest.test_case "durability" `Quick test_pbr_durability;
          Alcotest.test_case "overlapped state transfer" `Quick
            test_pbr_overlapped_state_transfer;
          qt prop_pbr_random_crash;
        ] );
      ( "chain",
        [
          Alcotest.test_case "normal case" `Quick test_chain_normal_case;
          Alcotest.test_case "tail reply = commit point" `Quick
            test_chain_tail_reply_implies_all_executed;
          Alcotest.test_case "head crash recovery" `Quick
            test_chain_head_crash_recovery;
        ] );
      ( "smr",
        [
          Alcotest.test_case "normal case" `Quick test_smr_normal_case;
          Alcotest.test_case "crash transparent" `Quick
            test_smr_crash_transparent;
          Alcotest.test_case "spare activation" `Quick
            test_smr_spare_activation;
          qt prop_smr_random_crash;
        ] );
    ]
