(* Tests for the sharding layer: the partition function and router, the
   bank's transaction decomposition, the Zipf workload generator, and an
   end-to-end sharded-cluster smoke run on the simulator. *)

module Engine = Sim.Engine
module Database = Storage.Database
module Store = Storage.Store
module Value = Storage.Value
module Txn = Shadowdb.Txn
module Shard = Shadowdb.Shard
module Codec = Shadowdb.Codec
module Bank = Workload.Bank
module Zipf = Workload.Zipf
module Sdb = Shadowdb.System.Make (Consensus.Paxos)

(* ---- partition function / router ---------------------------------- *)

let key_gen =
  QCheck.Gen.(
    map2
      (fun table id -> { Shard.table; id })
      (oneofl [ "ACCOUNTS"; "T"; "EVENTS"; "" ])
      (int_bound 100_000))

let key_arb =
  QCheck.make key_gen ~print:(fun k ->
      Printf.sprintf "{table=%S; id=%d}" k.Shard.table k.Shard.id)

let prop_every_key_has_one_shard =
  QCheck.Test.make ~name:"every key maps to exactly one shard in range"
    ~count:500
    QCheck.(pair key_arb (QCheck.make QCheck.Gen.(1 -- 16)))
    (fun (k, shards) ->
      let s = Shard.shard_of_key ~shards k in
      s >= 0 && s < shards && Shard.shard_of_key ~shards k = s)

(* Well-formed bank transactions, as the workload's descriptors shape
   them (a malformed arity is never submitted, so it's out of scope). *)
let txn_gen =
  QCheck.Gen.(
    let id = int_bound 1_000 in
    let kp =
      oneof
        [
          map2 (fun a m -> ("deposit", [ Value.Int a; Value.Int (1 + m) ])) id (int_bound 50);
          map2 (fun a m -> ("withdraw", [ Value.Int a; Value.Int (1 + m) ])) id (int_bound 50);
          map (fun a -> ("balance", [ Value.Int a ])) id;
          map3
            (fun s d m -> ("transfer", [ Value.Int s; Value.Int d; Value.Int (1 + m) ]))
            id id (int_bound 50);
          map
            (fun ids -> ("audit", List.map (fun i -> Value.Int i) ids))
            (list_size (1 -- 6) id);
        ]
    in
    map2
      (fun (client, seq) (kind, params) : Txn.t -> { Txn.client; seq; kind; params })
      (pair (int_bound 50) (int_bound 50))
      kp)

let txn_arb =
  QCheck.make txn_gen ~print:(fun (t : Txn.t) ->
      Printf.sprintf "%s(client=%d,seq=%d,%d params)" t.Txn.kind t.Txn.client
        t.Txn.seq
        (List.length t.Txn.params))

(* Routing is a pure function of the transaction's wire image: a decoded
   re-encoding routes identically (the coordinator and every replica
   route from their own copies). *)
let prop_route_stable_across_codec =
  QCheck.Test.make ~name:"routing stable across re-encoding" ~count:500
    txn_arb (fun txn ->
      let router = Bank.router ~shards:4 in
      match Codec.decode_txn (Codec.encode_txn txn) with
      | Error _ -> false
      | Ok txn' -> Shard.route router txn' = Shard.route router txn)

(* Distinct 2PC records never collide on their TOB entry id — the
   coordinator's re-broadcast dedup depends on injectivity. *)
let entry_tup =
  QCheck.make
    QCheck.Gen.(pair (pair bool (0 -- 500)) (pair (0 -- 500) (0 -- 7)))

let prop_entry_id_injective =
  QCheck.Test.make ~name:"2pc entry ids are injective" ~count:1000
    QCheck.(pair entry_tup entry_tup)
    (fun (((pa, ca), (sa, ha)), ((pb, cb), (sb, hb))) ->
      let phase b = if b then `Prepare else `Decision in
      let ida = Shard.entry_id ~phase:(phase pa) ~client:ca ~seq:sa ~shard:ha in
      let idb = Shard.entry_id ~phase:(phase pb) ~client:cb ~seq:sb ~shard:hb in
      (ida = idb) = ((pa, ca, sa, ha) = (pb, cb, sb, hb)))

(* The bank split: sub-transactions keep the parent xid, land on their
   own shard, and jointly cover the parent's keys. *)
let prop_bank_split_covers =
  QCheck.Test.make ~name:"bank split partitions the parent's keys" ~count:300
    txn_arb (fun txn ->
      let shards = 3 in
      let parts = Bank.shard_split ~shards txn in
      parts <> []
      && List.for_all
           (fun ((s : int), (sub : Txn.t)) ->
             sub.Txn.client = txn.Txn.client
             && sub.Txn.seq = txn.Txn.seq
             && List.for_all
                  (fun k -> Shard.shard_of_key ~shards k = s)
                  (Bank.shard_keys sub))
           parts)

(* ---- merged cross-shard reads equal an unsharded run --------------- *)

(* Drive the same deposit history into (a) one unsharded bank and (b) a
   per-shard family of banks, then compare a cross-shard audit: the
   per-shard results merged in shard order must equal the unsharded
   audit over the same shard-ordered ids. *)
let test_sharded_audit_matches_unsharded () =
  let rows = 64 and shards = 3 in
  let reg = Bank.registry () in
  let whole = Database.create Store.Hazel in
  Bank.setup ~rows whole;
  let parts_db =
    Array.init shards (fun s ->
        let db = Database.create Store.Hazel in
        Bank.setup_shard ~rows ~shards s db;
        db)
  in
  let exec db ~seq kp =
    let kind, params = kp in
    (Txn.execute reg db { Txn.client = 1; seq; kind; params }).Txn.outcome
  in
  (* identical deposit history on both deployments *)
  for i = 0 to 40 do
    let account = i * 7 mod rows and amount = 1 + (i mod 9) in
    let d = Bank.deposit ~account ~amount in
    ignore (exec whole ~seq:i d);
    let s = Shard.shard_of_key ~shards { Shard.table = Bank.table; id = account } in
    ignore (exec parts_db.(s) ~seq:i d)
  done;
  let ids = [ 3; 17; 42; 8; 21; 63; 0 ] in
  let audit : Txn.t =
    let kind, params = Bank.audit ~accounts:ids in
    { Txn.client = 9; seq = 0; kind; params }
  in
  let split = Bank.shard_split ~shards audit in
  (* merged per-shard rows, shard order *)
  let merged =
    List.concat_map
      (fun ((s : int), (sub : Txn.t)) ->
        match
          (Txn.execute reg parts_db.(s) sub).Txn.outcome
        with
        | Ok rows -> rows
        | Error e -> Alcotest.fail ("shard audit failed: " ^ e))
      split
  in
  (* unsharded audit over the same shard-ordered id sequence *)
  let shard_ordered_params =
    List.concat_map (fun ((_ : int), (sub : Txn.t)) -> sub.Txn.params) split
  in
  let reference =
    match
      (Txn.execute reg whole
         { Txn.client = 9; seq = 1; kind = "audit"; params = shard_ordered_params })
        .Txn.outcome
    with
    | Ok rows -> rows
    | Error e -> Alcotest.fail ("unsharded audit failed: " ^ e)
  in
  Alcotest.(check bool) "merged = unsharded" true (merged = reference);
  (* and the shard family partitions the account space exactly *)
  let total =
    Array.fold_left (fun acc db -> acc + Database.row_count db Bank.table) 0 parts_db
  in
  Alcotest.(check int) "rows partitioned" rows total;
  Alcotest.(check int) "money partitioned"
    (Bank.total_balance whole)
    (Array.fold_left (fun acc db -> acc + Bank.total_balance db) 0 parts_db)

(* ---- Zipf generator ------------------------------------------------ *)

let prop_zipf_range =
  QCheck.Test.make ~name:"zipf samples stay in [0, n)" ~count:500
    QCheck.(
      triple (QCheck.make Gen.(1 -- 500)) (QCheck.make Gen.(float_bound_inclusive 0.99))
        (QCheck.make Gen.(float_bound_inclusive 1.0)))
    (fun (n, theta, u) ->
      let z = Zipf.create ~n ~theta in
      let i = Zipf.sample z ~u in
      i >= 0 && i < n)

let test_zipf_deterministic () =
  let z = Zipf.create ~n:1000 ~theta:0.9 in
  for client = 0 to 5 do
    for seq = 0 to 20 do
      Alcotest.(check int) "sample_id deterministic"
        (Zipf.sample_id z ~client ~seq)
        (Zipf.sample_id z ~client ~seq)
    done
  done

let test_zipf_skew_monotone () =
  (* Higher theta concentrates more mass on the head items. *)
  let hits theta =
    let z = Zipf.create ~n:1000 ~theta in
    let c = ref 0 in
    for i = 0 to 9_999 do
      let u = (float_of_int i +. 0.5) /. 10_000.0 in
      if Zipf.sample z ~u < 10 then incr c
    done;
    !c
  in
  let flat = hits 0.0 and skewed = hits 0.9 in
  Alcotest.(check bool)
    (Printf.sprintf "hot-10 mass grows with theta (%d -> %d)" flat skewed)
    true
    (skewed > 2 * flat)

(* ---- end-to-end sharded cluster on the simulator ------------------- *)

let test_sharded_sim_smoke () =
  let rows = 32 and shards = 2 in
  let world : Sdb.wire Engine.t = Engine.create ~seed:11 () in
  let rworld = Runtime.Of_sim.of_engine world in
  let commits = ref 0 in
  let cluster =
    Sdb.spawn_sharded ~world:rworld ~registry:Bank.registry
      ~setup:(fun s db -> Bank.setup_shard ~rows ~shards s db)
      ~router:(Bank.router ~shards) ()
  in
  let make_txn ~client ~seq =
    let src = (client + (seq * 7)) mod rows in
    let dst = (src + 1 + (seq mod (rows - 1))) mod rows in
    Bank.transfer ~src ~dst ~amount:1
  in
  let n = 3 and count = 8 in
  let _, completed =
    Sdb.spawn_clients ~world:rworld ~target:(Sdb.To_sharded cluster) ~n ~count
      ~make_txn ~retry_timeout:2.0
      ~on_commit:(fun _ _ -> incr commits)
      ()
  in
  Engine.run ~until:60.0 ~max_events:5_000_000 world;
  Alcotest.(check int) "all clients completed" n (completed ());
  Alcotest.(check bool) "some transfers crossed shards" true
    (cluster.Sdb.sh_committed () > 0);
  (* per-shard replicas agree, and the freshest replicas conserve money *)
  let total =
    Array.fold_left
      (fun acc (g : Sdb.smr_cluster) ->
        let best =
          List.fold_left
            (fun best l ->
              match best with
              | Some b when g.Sdb.smr_gseq_of b >= g.Sdb.smr_gseq_of l -> best
              | _ -> Some l)
            None g.Sdb.smr_nodes
        in
        let hashes =
          List.filter_map
            (fun l ->
              if g.Sdb.smr_gseq_of l > 0 then Some (g.Sdb.smr_hash_of l)
              else None)
            g.Sdb.smr_nodes
        in
        (match hashes with
        | h :: t ->
            Alcotest.(check bool) "shard replicas agree" true
              (List.for_all (( = ) h) t)
        | [] -> ());
        acc
        + g.Sdb.smr_db_view (Option.get best) Bank.total_balance ~default:0)
      0 cluster.Sdb.sh_groups
  in
  Alcotest.(check int) "money conserved across shards" (rows * 100) total

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "shard"
    [
      ( "partition",
        [
          qt prop_every_key_has_one_shard;
          qt prop_route_stable_across_codec;
          qt prop_entry_id_injective;
          qt prop_bank_split_covers;
        ] );
      ( "reads",
        [
          Alcotest.test_case "sharded audit = unsharded" `Quick
            test_sharded_audit_matches_unsharded;
        ] );
      ( "zipf",
        [
          qt prop_zipf_range;
          Alcotest.test_case "deterministic" `Quick test_zipf_deterministic;
          Alcotest.test_case "skew monotone" `Quick test_zipf_skew_monotone;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "sharded sim smoke" `Quick test_sharded_sim_smoke;
        ] );
    ]
