(* Tests for the discrete-event simulator substrate. *)

module Engine = Sim.Engine
module Prng = Sim.Prng
module Heap = Sim.Heap

let check_float = Alcotest.(check (float 1e-9))

(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  Alcotest.(check bool) "different streams" false (Prng.bits64 a = Prng.bits64 b)

let test_prng_float_range () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_prng_int_range () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (x >= 0 && x < 10)
  done

let test_prng_mean () =
  let rng = Prng.create 11 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.float rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let prop_prng_split_independent =
  QCheck.Test.make ~name:"prng split diverges from parent" ~count:50
    QCheck.small_int (fun seed ->
      let parent = Prng.create seed in
      let child = Prng.split parent in
      Prng.bits64 parent <> Prng.bits64 child)

(* Heap *)

let test_heap_order () =
  let h = Heap.create () in
  Heap.push h ~time:3.0 ~seq:1 "c";
  Heap.push h ~time:1.0 ~seq:2 "a";
  Heap.push h ~time:2.0 ~seq:3 "b";
  let pop () =
    match Heap.pop h with Some (_, _, v) -> v | None -> "empty"
  in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_heap_tie_break () =
  let h = Heap.create () in
  Heap.push h ~time:1.0 ~seq:2 "second";
  Heap.push h ~time:1.0 ~seq:1 "first";
  (match Heap.pop h with
  | Some (_, _, v) -> Alcotest.(check string) "seq order" "first" v
  | None -> Alcotest.fail "empty");
  match Heap.pop h with
  | Some (_, _, v) -> Alcotest.(check string) "seq order" "second" v
  | None -> Alcotest.fail "empty"

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.pop h = None);
  Alcotest.(check int) "length" 0 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in key order" ~count:200
    QCheck.(list (pair (float_bound_exclusive 1000.0) small_int))
    (fun items ->
      let h = Heap.create () in
      List.iteri (fun i (t, _) -> Heap.push h ~time:t ~seq:i ()) items;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (t, s, ()) -> drain ((t, s) :: acc)
      in
      let popped = drain [] in
      let rec sorted = function
        | (t1, s1) :: ((t2, s2) :: _ as rest) ->
            (t1 < t2 || (t1 = t2 && s1 < s2)) && sorted rest
        | _ -> true
      in
      sorted popped && List.length popped = List.length items)

(* Engine basics.  Message type: string. *)

let test_engine_ping_pong () =
  let w = Engine.create () in
  let log = ref [] in
  let pong =
    Engine.spawn w ~name:"pong" (fun () ctx -> function
      | Engine.Recv { src; msg = "ping" } -> Engine.send ctx src "pong"
      | Engine.Recv _ | Engine.Init | Engine.Timer _ -> ())
  in
  let _ping =
    Engine.spawn w ~name:"ping" (fun () ctx -> function
      | Engine.Init -> Engine.send ctx pong "ping"
      | Engine.Recv { msg; _ } -> log := (Engine.time ctx, msg) :: !log
      | Engine.Timer _ -> ())
  in
  Engine.run w;
  match !log with
  | [ (t, "pong") ] ->
      Alcotest.(check bool) "latency ≈ 2 one-way delays" true
        (t > 1.5e-4 && t < 5.0e-4)
  | _ -> Alcotest.fail "expected exactly one pong"

let test_engine_fifo () =
  let w = Engine.create () in
  let received = ref [] in
  let dst =
    Engine.spawn w ~name:"dst" (fun () _ctx -> function
      | Engine.Recv { msg; _ } -> received := msg :: !received
      | Engine.Init | Engine.Timer _ -> ())
  in
  let _src =
    Engine.spawn w ~name:"src" (fun () ctx -> function
      | Engine.Init ->
          for i = 1 to 50 do
            Engine.send ctx ~size:(64 * i) dst (string_of_int i)
          done
      | Engine.Recv _ | Engine.Timer _ -> ())
  in
  Engine.run w;
  let expect = List.init 50 (fun i -> string_of_int (50 - i)) in
  Alcotest.(check (list string)) "FIFO per link" expect !received

let test_engine_determinism () =
  let run_once () =
    let w = Engine.create ~seed:9 () in
    let log = ref [] in
    let echo =
      Engine.spawn w ~name:"echo" (fun () ctx -> function
        | Engine.Recv { src; msg } -> Engine.send ctx src ("re:" ^ msg)
        | Engine.Init | Engine.Timer _ -> ())
    in
    let _client =
      Engine.spawn w ~name:"client" (fun () ctx -> function
        | Engine.Init ->
            Engine.send ctx echo "a";
            Engine.send ctx echo "b"
        | Engine.Recv { msg; _ } -> log := (Engine.time ctx, msg) :: !log
        | Engine.Timer _ -> ())
    in
    Engine.run w;
    !log
  in
  Alcotest.(check bool) "identical runs" true (run_once () = run_once ())

let test_engine_cpu_serialization () =
  (* Two messages arriving (almost) together at a node charging 1 s each
     must finish roughly 1 s apart: the node is a serial CPU. *)
  let w = Engine.create () in
  let finish_times = ref [] in
  let worker =
    Engine.spawn w ~name:"worker" (fun () ctx -> function
      | Engine.Recv { src; _ } ->
          Engine.charge ctx 1.0;
          Engine.send ctx src "done"
      | Engine.Init | Engine.Timer _ -> ())
  in
  let _client =
    Engine.spawn w ~name:"client" (fun () ctx -> function
      | Engine.Init ->
          Engine.send ctx worker "job1";
          Engine.send ctx worker "job2"
      | Engine.Recv _ -> finish_times := Engine.time ctx :: !finish_times
      | Engine.Timer _ -> ())
  in
  Engine.run w;
  match List.sort compare !finish_times with
  | [ t1; t2 ] ->
      check_float "first done after ≈1 s"
        1.0
        (Float.round (t1 *. 10.) /. 10.);
      check_float "second done after ≈2 s" 2.0 (Float.round (t2 *. 10.) /. 10.)
  | _ -> Alcotest.fail "expected two completions"

let test_engine_timer () =
  let w = Engine.create () in
  let fired = ref [] in
  let _node =
    Engine.spawn w ~name:"t" (fun () ctx -> function
      | Engine.Init ->
          ignore (Engine.set_timer ctx 5.0 "later");
          ignore (Engine.set_timer ctx 1.0 "soon")
      | Engine.Timer { tag; _ } -> fired := (Engine.time ctx, tag) :: !fired
      | Engine.Recv _ -> ())
  in
  Engine.run w;
  match List.rev !fired with
  | [ (t1, "soon"); (t2, "later") ] ->
      check_float "soon at 1" 1.0 t1;
      check_float "later at 5" 5.0 t2
  | _ -> Alcotest.fail "expected two timer firings in order"

let test_engine_cancel_timer () =
  let w = Engine.create () in
  let fired = ref 0 in
  let _node =
    Engine.spawn w ~name:"t" (fun () ctx -> function
      | Engine.Init ->
          let id = Engine.set_timer ctx 1.0 "x" in
          Engine.cancel_timer ctx id
      | Engine.Timer _ -> incr fired
      | Engine.Recv _ -> ())
  in
  Engine.run w;
  Alcotest.(check int) "cancelled timer never fires" 0 !fired

let test_engine_crash_drops_messages () =
  let w = Engine.create () in
  let received = ref 0 in
  let dst =
    Engine.spawn w ~name:"dst" (fun () _ -> function
      | Engine.Recv _ -> incr received
      | Engine.Init | Engine.Timer _ -> ())
  in
  let _src =
    Engine.spawn w ~name:"src" (fun () ctx -> function
      | Engine.Init -> Engine.send ctx dst "m"
      | Engine.Recv _ | Engine.Timer _ -> ())
  in
  Engine.crash w dst;
  Engine.run w;
  Alcotest.(check int) "no delivery to crashed node" 0 !received;
  Alcotest.(check bool) "not alive" false (Engine.is_alive w dst)

let test_engine_restart_fresh_state () =
  let w = Engine.create () in
  let inits = ref 0 in
  let node =
    Engine.spawn w ~name:"n" (fun () ->
        incr inits;
        fun _ctx -> function Engine.Init | Engine.Recv _ | Engine.Timer _ -> ())
  in
  Engine.run w;
  Engine.crash w node;
  Engine.restart w node;
  Engine.run w;
  Alcotest.(check int) "factory invoked twice" 2 !inits;
  Alcotest.(check bool) "alive after restart" true (Engine.is_alive w node)

let test_engine_crash_invalidates_timers () =
  let w = Engine.create () in
  let fired = ref 0 in
  let node =
    Engine.spawn w ~name:"n" (fun () ctx -> function
      | Engine.Init -> ignore (Engine.set_timer ctx 10.0 "old-life")
      | Engine.Timer _ -> incr fired
      | Engine.Recv _ -> ())
  in
  Engine.at w 1.0 (fun () ->
      Engine.crash w node;
      Engine.restart w node);
  Engine.run w;
  (* The pre-crash timer must not fire; the restart re-arms one which does. *)
  Alcotest.(check int) "one firing (from the restarted incarnation)" 1 !fired

let test_engine_partition () =
  let w = Engine.create () in
  let received = ref 0 in
  let dst =
    Engine.spawn w ~name:"dst" (fun () _ -> function
      | Engine.Recv _ -> incr received
      | Engine.Init | Engine.Timer _ -> ())
  in
  let src =
    Engine.spawn w ~name:"src" (fun () ctx -> function
      | Engine.Init -> Engine.send ctx dst "before-heal"
      | Engine.Timer _ -> Engine.send ctx dst "after-heal"
      | Engine.Recv _ -> ())
  in
  Engine.partition w src dst;
  Engine.at w 1.0 (fun () ->
      Engine.heal w src dst;
      Engine.send_external w ~src dst "after-heal");
  Engine.run w;
  Alcotest.(check int) "only post-heal message arrives" 1 !received

let test_engine_at_ordering () =
  let w = Engine.create () in
  let order = ref [] in
  Engine.at w 2.0 (fun () -> order := 2 :: !order);
  Engine.at w 1.0 (fun () -> order := 1 :: !order);
  Engine.at w 3.0 (fun () -> order := 3 :: !order);
  Engine.run w;
  Alcotest.(check (list int)) "scripted order" [ 1; 2; 3 ] (List.rev !order)

let test_engine_run_until () =
  let w = Engine.create () in
  let fired = ref 0 in
  Engine.at w 1.0 (fun () -> incr fired);
  Engine.at w 10.0 (fun () -> incr fired);
  Engine.run ~until:5.0 w;
  Alcotest.(check int) "only events before the horizon" 1 !fired

let test_engine_restart_while_partitioned () =
  (* A node that crashes and restarts behind a partition stays unreachable
     until the partition heals; the partition survives the restart. *)
  let w = Engine.create () in
  let received = ref [] in
  let dst =
    Engine.spawn w ~name:"dst" (fun () _ -> function
      | Engine.Recv { msg; _ } -> received := msg :: !received
      | Engine.Init | Engine.Timer _ -> ())
  in
  let src =
    Engine.spawn w ~name:"src" (fun () _ -> function _ -> ())
  in
  Engine.at w 0.5 (fun () -> Engine.partition w src dst);
  Engine.at w 1.0 (fun () -> Engine.crash w dst);
  Engine.at w 1.5 (fun () ->
      Engine.restart w dst;
      Engine.send_external w ~src dst "while-partitioned");
  Engine.at w 2.0 (fun () ->
      Engine.heal w src dst;
      Engine.send_external w ~src dst "after-heal");
  Engine.run w;
  Alcotest.(check (list string))
    "partition outlives crash/restart" [ "after-heal" ] !received;
  Alcotest.(check int) "one drop counted" 1 (Engine.drops w)

let test_engine_crash_in_flight_counters () =
  (* Messages in flight towards a node when it crashes are lost and show
     up in the drop counter; pre-crash deliveries are counted. *)
  let w = Engine.create () in
  let got = ref 0 in
  let dst =
    Engine.spawn w ~name:"dst" (fun () _ -> function
      | Engine.Recv _ -> incr got
      | Engine.Init | Engine.Timer _ -> ())
  in
  let src =
    Engine.spawn w ~name:"src" (fun () ctx -> function
      | Engine.Timer _ ->
          for i = 1 to 5 do
            Engine.send ctx dst (string_of_int i)
          done
      | Engine.Init ->
          ignore (Engine.set_timer ctx 1.0 "burst");
          Engine.send ctx dst "early"
      | Engine.Recv _ -> ())
  in
  (* The burst leaves src at t=1.0; dst crashes while it is in flight. *)
  Engine.at w 1.00001 (fun () -> Engine.crash w dst);
  ignore src;
  Engine.run w;
  Alcotest.(check int) "pre-crash delivery" 1 !got;
  Alcotest.(check int) "deliveries counter" 1 (Engine.deliveries w);
  Alcotest.(check int) "in-flight burst dropped" 5 (Engine.drops w)

let test_engine_trace_determinism () =
  (* Two same-seed runs produce byte-identical event traces (the formatted
     trace buffer, not just final state). *)
  let run_once () =
    let w = Engine.create ~seed:11 () in
    Engine.enable_trace w;
    let echo =
      Engine.spawn w ~name:"echo" (fun () ctx -> function
        | Engine.Recv { src; msg } ->
            Engine.trace ctx ("echo " ^ msg);
            Engine.send ctx src ("re:" ^ msg)
        | Engine.Init | Engine.Timer _ -> ())
    in
    let _client =
      Engine.spawn w ~name:"client" (fun () ctx -> function
        | Engine.Init ->
            List.iter (Engine.send ctx echo) [ "a"; "b"; "c" ];
            ignore (Engine.set_timer ctx 0.5 "more")
        | Engine.Timer _ -> Engine.send ctx echo "d"
        | Engine.Recv { msg; _ } -> Engine.trace ctx ("got " ^ msg))
    in
    Engine.run w;
    String.concat "\n"
      (List.map
         (fun (t, n, line) -> Printf.sprintf "%.9f %d %s" t n line)
         (Engine.get_trace w))
  in
  Alcotest.(check string) "byte-identical traces" (run_once ()) (run_once ())

let test_engine_scheduler_reorders () =
  (* Two messages from different sources arriving in the same slack window
     can be swapped by a scheduler hook, and candidate metadata identifies
     them; per-link FIFO pairs are never offered together. *)
  let w = Engine.create ~net:{ Sim.Net.local with jitter = 0.0 } () in
  let received = ref [] in
  let dst =
    Engine.spawn w ~name:"dst" (fun () _ -> function
      | Engine.Recv { msg; _ } -> received := msg :: !received
      | Engine.Init | Engine.Timer _ -> ())
  in
  let mk_src name msg =
    Engine.spawn w ~name (fun () ctx -> function
      | Engine.Init -> Engine.send ctx dst msg
      | Engine.Recv _ | Engine.Timer _ -> ())
  in
  let _a = mk_src "a" "from-a" and _b = mk_src "b" "from-b" in
  let widths = ref [] in
  Engine.set_scheduler w ~slack:1e-4 ~width:8 (fun cands ->
      widths := Array.length cands :: !widths;
      Array.length cands - 1 (* always pick the latest candidate *));
  Engine.run w;
  Alcotest.(check (list string))
    "arrivals swapped by the hook" [ "from-a"; "from-b" ] !received;
  Alcotest.(check bool) "a real choice point was offered" true
    (List.exists (fun n -> n = 2) !widths)

let test_engine_scheduler_preserves_link_fifo () =
  (* Same source, same destination: the hook must never be able to reorder
     the link, whatever it answers. *)
  let w = Engine.create ~net:{ Sim.Net.local with jitter = 0.0 } () in
  let received = ref [] in
  let dst =
    Engine.spawn w ~name:"dst" (fun () _ -> function
      | Engine.Recv { msg; _ } -> received := msg :: !received
      | Engine.Init | Engine.Timer _ -> ())
  in
  let _src =
    Engine.spawn w ~name:"src" (fun () ctx -> function
      | Engine.Init ->
          for i = 1 to 6 do
            Engine.send ctx dst (string_of_int i)
          done
      | Engine.Recv _ | Engine.Timer _ -> ())
  in
  Engine.set_scheduler w (fun cands -> Array.length cands - 1);
  Engine.run w;
  Alcotest.(check (list string))
    "FIFO kept under adversarial scheduling"
    (List.init 6 (fun i -> string_of_int (6 - i)))
    !received

(* Determinism over random topologies: the full trace of a randomly wired
   echo network is a function of the seed alone. *)
let prop_engine_deterministic_topologies =
  QCheck.Test.make ~name:"engine runs are reproducible from the seed"
    ~count:30
    QCheck.(pair (int_range 2 6) small_int)
    (fun (n, seed) ->
      let run () =
        let w = Engine.create ~seed () in
        let log = ref [] in
        let ids = ref [] in
        let mk i =
          Engine.spawn w ~name:(string_of_int i) (fun () ctx -> function
            | Engine.Init ->
                if i = 0 then
                  List.iteri
                    (fun j dst ->
                      if j <> 0 then Engine.send ctx dst (string_of_int j))
                    !ids
            | Engine.Recv { src; msg } ->
                log := (Engine.time ctx, src, msg) :: !log;
                if String.length msg < 4 then Engine.send ctx src (msg ^ "x")
            | Engine.Timer _ -> ())
        in
        ids := List.init n mk;
        Engine.run ~until:10.0 w;
        !log
      in
      run () = run ())

(* The wan profile: delays land in tens of milliseconds, the finite
   bandwidth term shows up for large messages, and the loss knob drops
   messages end-to-end while lossless delivery still completes. *)
let test_net_wan_profile () =
  let wan = Sim.Net.wan () in
  let rng = Prng.create 41 in
  for _ = 1 to 100 do
    let d = Sim.Net.delay wan rng ~size:64 in
    Alcotest.(check bool)
      "small-message delay in [40 ms, 51 ms)" true
      (d >= 0.04 && d < 0.051)
  done;
  let rng = Prng.create 41 in
  let small = Sim.Net.delay wan rng ~size:0 in
  let rng = Prng.create 41 in
  let big = Sim.Net.delay wan rng ~size:1_250_000 in
  Alcotest.(check (float 1e-9))
    "1.25 MB costs 100 ms of serialization at 12.5 MB/s" 0.1 (big -. small);
  let run net =
    let w = Engine.create ~seed:43 ~net () in
    let got = ref 0 in
    let echo =
      Engine.spawn w ~name:"echo" (fun () _ctx -> function
        | Engine.Recv _ -> incr got
        | Engine.Init | Engine.Timer _ -> ())
    in
    let _sender =
      Engine.spawn w ~name:"sender" (fun () ctx -> function
        | Engine.Init -> for i = 1 to 50 do Engine.send ctx echo (string_of_int i) done
        | Engine.Recv _ | Engine.Timer _ -> ())
    in
    Engine.run ~until:60.0 w;
    (!got, Engine.now w)
  in
  let delivered, finished = run wan in
  Alcotest.(check int) "lossless wan delivers everything" 50 delivered;
  Alcotest.(check bool)
    "wan messages took tens of ms" true
    (finished >= 0.04 && finished < 1.0);
  let delivered_lossy, _ = run (Sim.Net.wan ~loss:0.7 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "loss drops messages (got %d of 50)" delivered_lossy)
    true
    (delivered_lossy < 50)

(* Tracing is off by default and honours its cap when on. *)
let test_trace_toggle_and_cap () =
  let run ~setup =
    let w = Engine.create ~seed:3 () in
    setup w;
    let sink =
      Engine.spawn w ~name:"sink" (fun () ctx -> function
        | Engine.Recv { msg; _ } -> Engine.trace ctx ("got " ^ msg)
        | Engine.Init | Engine.Timer _ -> ())
    in
    let _src =
      Engine.spawn w ~name:"src" (fun () ctx -> function
        | Engine.Init ->
            for i = 1 to 5 do Engine.send ctx sink (string_of_int i) done
        | Engine.Recv _ | Engine.Timer _ -> ())
    in
    Engine.run w;
    List.length (Engine.get_trace w)
  in
  Alcotest.(check int) "disabled by default" 0 (run ~setup:(fun _ -> ()));
  Alcotest.(check int)
    "records when enabled" 5
    (run ~setup:(fun w -> Engine.enable_trace w));
  Alcotest.(check int)
    "cap bounds the buffer" 2
    (run ~setup:(fun w -> Engine.enable_trace ~cap:2 w))

(* The incremental pending-event digest must agree with a from-scratch
   heap walk after any interleaving of steps, crashes, restarts,
   partitions, heals, and external injections. *)
let prop_fingerprint_incremental =
  let gen_ops =
    QCheck.Gen.(
      list_size (5 -- 40)
        (oneof
           [
             map (fun k -> `Step (1 + (abs k mod 5))) small_int;
             map (fun n -> `Crash n) (0 -- 3);
             map (fun n -> `Restart n) (0 -- 3);
             map2 (fun a b -> `Part (a, b)) (0 -- 3) (0 -- 3);
             map2 (fun a b -> `Heal (a, b)) (0 -- 3) (0 -- 3);
             map (fun n -> `Send n) (0 -- 3);
           ]))
  in
  QCheck.Test.make
    ~name:"incremental fingerprint matches heap-walk reference" ~count:100
    (QCheck.make ~print:(fun ops -> string_of_int (List.length ops)) gen_ops)
    (fun ops ->
      let w = Engine.create ~seed:5 () in
      let nodes =
        List.init 4 (fun i ->
            Engine.spawn w ~name:(string_of_int i) (fun () ctx -> function
              | Engine.Init -> ignore (Engine.set_timer ctx 0.3 "tick")
              | Engine.Timer _ -> ()
              | Engine.Recv { src; msg } ->
                  if String.length msg < 6 then
                    Engine.send ctx src (msg ^ "x")))
      in
      let node i = List.nth nodes i in
      let ok = ref true in
      let check () =
        if
          Engine.in_flight_fingerprint w
          <> Engine.in_flight_fingerprint_ref w
        then ok := false
      in
      check ();
      List.iter
        (fun op ->
          (match op with
          | `Step k -> for _ = 1 to k do ignore (Engine.step w) done
          | `Crash n ->
              if Engine.is_alive w (node n) then Engine.crash w (node n)
          | `Restart n ->
              if not (Engine.is_alive w (node n)) then
                Engine.restart w (node n)
          | `Part (a, b) ->
              if a <> b then Engine.partition w (node a) (node b)
          | `Heal (a, b) -> if a <> b then Engine.heal w (node a) (node b)
          | `Send n ->
              Engine.send_external w ~src:(node ((n + 1) mod 4)) (node n) "m");
          check ())
        ops;
      Engine.run ~max_events:500 w;
      check ();
      !ok)

let prop_network_delay_positive =
  QCheck.Test.make ~name:"net delay is positive and size-monotone" ~count:100
    QCheck.(pair small_int small_int)
    (fun (seed, size) ->
      let size = abs size in
      let rng = Prng.create seed in
      let d1 = Sim.Net.delay Sim.Net.lan rng ~size in
      let rng = Prng.create seed in
      let d2 = Sim.Net.delay Sim.Net.lan rng ~size:(size + 10_000_000) in
      d1 > 0.0 && d2 > d1)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "mean" `Quick test_prng_mean;
          qt prop_prng_split_independent;
        ] );
      ( "heap",
        [
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "tie break" `Quick test_heap_tie_break;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          qt prop_heap_sorts;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ping pong" `Quick test_engine_ping_pong;
          Alcotest.test_case "fifo links" `Quick test_engine_fifo;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
          Alcotest.test_case "cpu serialization" `Quick
            test_engine_cpu_serialization;
          Alcotest.test_case "timers" `Quick test_engine_timer;
          Alcotest.test_case "cancel timer" `Quick test_engine_cancel_timer;
          Alcotest.test_case "crash drops messages" `Quick
            test_engine_crash_drops_messages;
          Alcotest.test_case "restart fresh state" `Quick
            test_engine_restart_fresh_state;
          Alcotest.test_case "crash invalidates timers" `Quick
            test_engine_crash_invalidates_timers;
          Alcotest.test_case "partition" `Quick test_engine_partition;
          Alcotest.test_case "at ordering" `Quick test_engine_at_ordering;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "restart while partitioned" `Quick
            test_engine_restart_while_partitioned;
          Alcotest.test_case "crash in-flight counters" `Quick
            test_engine_crash_in_flight_counters;
          Alcotest.test_case "byte-identical traces" `Quick
            test_engine_trace_determinism;
          Alcotest.test_case "trace toggle and cap" `Quick
            test_trace_toggle_and_cap;
          qt prop_fingerprint_incremental;
          Alcotest.test_case "scheduler reorders concurrent arrivals" `Quick
            test_engine_scheduler_reorders;
          Alcotest.test_case "scheduler preserves link fifo" `Quick
            test_engine_scheduler_preserves_link_fifo;
          Alcotest.test_case "wan profile" `Quick test_net_wan_profile;
          qt prop_network_delay_positive;
          qt prop_engine_deterministic_topologies;
        ] );
    ]
