(* Tests for the measurement kit. *)

let check_float = Alcotest.(check (float 1e-9))

let test_sample_basic () =
  let s = Stats.Sample.create () in
  List.iter (Stats.Sample.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.Sample.count s);
  check_float "mean" 2.5 (Stats.Sample.mean s);
  check_float "min" 1.0 (Stats.Sample.min s);
  check_float "max" 4.0 (Stats.Sample.max s);
  check_float "sum" 10.0 (Stats.Sample.sum s)

let test_sample_empty () =
  let s = Stats.Sample.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.Sample.mean s));
  Alcotest.(check bool) "p50 nan" true (Float.is_nan (Stats.Sample.median s))

let test_sample_percentile () =
  let s = Stats.Sample.create () in
  for i = 1 to 100 do
    Stats.Sample.add s (float_of_int i)
  done;
  check_float "p50" 50.0 (Stats.Sample.percentile s 50.0);
  check_float "p99" 99.0 (Stats.Sample.percentile s 99.0);
  check_float "p100" 100.0 (Stats.Sample.percentile s 100.0)

(* Nearest-rank percentile edges: empty samples answer nan, a singleton
   answers itself at every p, and p0/p50/p100 hit min/lower-median/max. *)
let test_sample_percentile_edges () =
  let empty = Stats.Sample.create () in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "empty p%.0f is nan" p)
        true
        (Float.is_nan (Stats.Sample.percentile empty p)))
    [ 0.0; 50.0; 100.0 ];
  let one = Stats.Sample.create () in
  Stats.Sample.add one 42.0;
  List.iter
    (fun p ->
      check_float
        (Printf.sprintf "singleton p%.0f" p)
        42.0
        (Stats.Sample.percentile one p))
    [ 0.0; 50.0; 99.0; 100.0 ];
  let pair = Stats.Sample.create () in
  Stats.Sample.add pair 20.0;
  Stats.Sample.add pair 10.0;
  check_float "p0 is the minimum" 10.0 (Stats.Sample.percentile pair 0.0);
  check_float "p50 is the lower median" 10.0 (Stats.Sample.percentile pair 50.0);
  check_float "p100 is the maximum" 20.0 (Stats.Sample.percentile pair 100.0)

let test_sample_stddev () =
  let s = Stats.Sample.create () in
  List.iter (Stats.Sample.add s) [ 2.0; 2.0; 2.0 ];
  check_float "constant data" 0.0 (Stats.Sample.stddev s)

let test_sample_interleaved_queries () =
  (* Percentile queries sort internally; later adds must still be seen. *)
  let s = Stats.Sample.create () in
  Stats.Sample.add s 5.0;
  ignore (Stats.Sample.median s);
  Stats.Sample.add s 1.0;
  check_float "min after re-add" 1.0 (Stats.Sample.percentile s 0.0)

let prop_sample_mean_bounds =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 100.0))
    (fun xs ->
      let s = Stats.Sample.create () in
      List.iter (Stats.Sample.add s) xs;
      let m = Stats.Sample.mean s in
      m >= Stats.Sample.min s -. 1e-9 && m <= Stats.Sample.max s +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 100.0))
    (fun xs ->
      let s = Stats.Sample.create () in
      List.iter (Stats.Sample.add s) xs;
      Stats.Sample.percentile s 25.0 <= Stats.Sample.percentile s 75.0)

let test_series_bins () =
  let s = Stats.Series.create ~bin:1.0 in
  List.iter (Stats.Series.record s) [ 0.1; 0.2; 2.5 ];
  Alcotest.(check int) "total" 3 (Stats.Series.total s);
  match Stats.Series.bins s with
  | [ (_, r0); (_, r1); (_, r2) ] ->
      check_float "bin0 rate" 2.0 r0;
      check_float "bin1 empty" 0.0 r1;
      check_float "bin2 rate" 1.0 r2
  | _ -> Alcotest.fail "expected three bins"

let test_series_rate_units () =
  let s = Stats.Series.create ~bin:0.5 in
  List.iter (Stats.Series.record s) [ 0.1; 0.2; 0.3 ];
  match Stats.Series.bins s with
  | (_, r) :: _ -> check_float "3 events in 0.5 s = 6/s" 6.0 r
  | [] -> Alcotest.fail "expected bins"

let test_table_smoke () =
  (* Printers must not raise. *)
  Stats.Table.print_table ~title:"t" ~header:[ "a"; "b" ]
    [ [ "1"; "2" ]; [ "3"; "4" ] ];
  Stats.Table.print_series ~title:"s" ~xlabel:"x" ~ylabel:"y"
    [ (1.0, 2.0); (3.0, 4.0) ];
  Alcotest.(check string) "fmt small" "0.0690" (Stats.Table.fmt_f 0.069);
  Alcotest.(check string) "fmt big" "4600" (Stats.Table.fmt_f 4600.0)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "stats"
    [
      ( "sample",
        [
          Alcotest.test_case "basic" `Quick test_sample_basic;
          Alcotest.test_case "empty" `Quick test_sample_empty;
          Alcotest.test_case "percentile" `Quick test_sample_percentile;
          Alcotest.test_case "percentile edges" `Quick
            test_sample_percentile_edges;
          Alcotest.test_case "stddev" `Quick test_sample_stddev;
          Alcotest.test_case "interleaved" `Quick
            test_sample_interleaved_queries;
          qt prop_sample_mean_bounds;
          qt prop_percentile_monotone;
        ] );
      ( "series",
        [
          Alcotest.test_case "bins" `Quick test_series_bins;
          Alcotest.test_case "rate units" `Quick test_series_rate_units;
        ] );
      ("table", [ Alcotest.test_case "smoke" `Quick test_table_smoke ]);
    ]
